package discovery

import (
	"context"
	"strings"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/datagen"
	"semandaq/internal/detect"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

func mkTable(t *testing.T, attrs []string, data [][]string) *relstore.Table {
	t.Helper()
	tab := relstore.NewTable(schema.New("r", attrs...))
	for _, r := range data {
		row := make(relstore.Tuple, len(r))
		for i, f := range r {
			row[i] = types.Parse(f)
		}
		tab.MustInsert(row)
	}
	return tab
}

func TestMineConstantCFDs(t *testing.T) {
	// CC=44 always comes with CNT=UK; CC=1 with CNT=US.
	tab := mkTable(t, []string{"CC", "CNT", "CITY"}, [][]string{
		{"44", "UK", "Edinburgh"},
		{"44", "UK", "London"},
		{"44", "UK", "London"},
		{"1", "US", "NYC"},
		{"1", "US", "Chicago"},
		{"1", "US", "NYC"},
	})
	cfds, err := MineConstantCFDs(tab, Options{MinSupport: 2, MaxLHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	var found44, found1 bool
	for _, c := range cfds {
		s := c.String()
		if strings.Contains(s, "[CC=44] -> [CNT=UK]") {
			found44 = true
		}
		if strings.Contains(s, "[CC=1] -> [CNT=US]") {
			found1 = true
		}
	}
	if !found44 || !found1 {
		t.Errorf("missing constant CFDs; got:\n%s", render(cfds))
	}
}

func TestMineConstantMinimality(t *testing.T) {
	// CC=44 -> CNT=UK holds; therefore (CC=44, CITY=x) -> CNT=UK is
	// redundant and must not be emitted.
	tab := mkTable(t, []string{"CC", "CITY", "CNT"}, [][]string{
		{"44", "Edinburgh", "UK"},
		{"44", "Edinburgh", "UK"},
		{"44", "London", "UK"},
		{"44", "London", "UK"},
		{"1", "NYC", "US"},
		{"1", "NYC", "US"},
	})
	cfds, err := MineConstantCFDs(tab, Options{MinSupport: 2, MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cfds {
		if len(c.LHS) == 2 && c.RHS[0] == "CNT" {
			hasCC := false
			for _, a := range c.LHS {
				if a == "CC" {
					hasCC = true
				}
			}
			if hasCC {
				t.Errorf("non-minimal rule emitted: %s", c)
			}
		}
	}
}

func TestMineConstantSupportThreshold(t *testing.T) {
	tab := mkTable(t, []string{"A", "B"}, [][]string{
		{"x", "1"},
		{"y", "2"}, {"y", "2"}, {"y", "2"},
	})
	cfds, err := MineConstantCFDs(tab, Options{MinSupport: 3, MaxLHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cfds {
		if strings.Contains(c.String(), "A=x") {
			t.Errorf("low-support rule emitted: %s", c)
		}
	}
}

func TestMineVariableGlobalFD(t *testing.T) {
	// ZIP -> CITY holds globally.
	tab := mkTable(t, []string{"ZIP", "CITY", "STR"}, [][]string{
		{"z1", "Edinburgh", "a"},
		{"z1", "Edinburgh", "b"},
		{"z2", "London", "c"},
		{"z2", "London", "d"},
	})
	cfds, err := MineVariableCFDs(tab, Options{MinSupport: 2, MaxLHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range cfds {
		if len(c.LHS) == 1 && c.LHS[0] == "ZIP" && c.RHS[0] == "CITY" &&
			c.Tableau[0].LHS[0].Wildcard {
			found = true
		}
	}
	if !found {
		t.Errorf("global FD not found; got:\n%s", render(cfds))
	}
}

func TestMineVariableConditionalFD(t *testing.T) {
	// ZIP -> STR holds only where CNT=UK (the paper's φ2 shape).
	tab := mkTable(t, []string{"CNT", "ZIP", "STR"}, [][]string{
		{"UK", "z1", "May"}, {"UK", "z1", "May"},
		{"UK", "z2", "Cri"}, {"UK", "z2", "Cri"},
		{"US", "z3", "a"}, {"US", "z3", "b"}, // violates in US
		{"US", "z4", "c"}, {"US", "z4", "d"},
	})
	cfds, err := MineVariableCFDs(tab, Options{MinSupport: 2, MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range cfds {
		s := c.String()
		if strings.Contains(s, "CNT=UK") && strings.Contains(s, "-> [STR=_]") {
			found = true
		}
	}
	if !found {
		t.Errorf("conditional FD not found; got:\n%s", render(cfds))
	}
}

func TestMineVariableMinimality(t *testing.T) {
	// A -> B holds globally; {A, C} -> B must be pruned.
	tab := mkTable(t, []string{"A", "B", "C"}, [][]string{
		{"a1", "b1", "c1"},
		{"a1", "b1", "c2"},
		{"a2", "b2", "c1"},
		{"a2", "b2", "c2"},
	})
	cfds, err := MineVariableCFDs(tab, Options{MinSupport: 2, MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cfds {
		if c.RHS[0] == "B" && len(c.LHS) == 2 {
			for _, a := range c.LHS {
				if a == "A" {
					t.Errorf("non-minimal FD emitted: %s", c)
				}
			}
		}
	}
}

func TestDiscoverOnGeneratedData(t *testing.T) {
	// The miner must rediscover the ground-truth rules the generator bakes
	// in: CC -> CNT constants and the zip/street/city dependencies.
	ds := datagen.Generate(datagen.Config{Tuples: 600, Seed: 9})
	rep, err := Mine(context.Background(), ds.Clean.Snapshot(), Options{MinSupport: 20, MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfds := rep.CFDs
	if len(cfds) == 0 {
		t.Fatal("nothing discovered")
	}
	if rep.Version != ds.Clean.Version() {
		t.Errorf("Report.Version = %d, want table version %d", rep.Version, ds.Clean.Version())
	}
	if rep.Tuples != 600 {
		t.Errorf("Report.Tuples = %d", rep.Tuples)
	}
	if len(rep.Candidates) == 0 {
		t.Fatal("no candidates recorded")
	}
	for _, c := range rep.Candidates {
		if c.Support <= 0 || c.Confidence != 1.0 || c.CFD == nil || c.Kind == "" {
			t.Fatalf("bad candidate %+v", c)
		}
	}
	all := render(cfds)
	for _, want := range []string{
		"[CC=44] -> [CNT=UK]",
		"[CC=1] -> [CNT=US]",
	} {
		if !strings.Contains(all, want) {
			t.Errorf("missing %q in:\n%s", want, all)
		}
	}
	// Every discovered CFD must actually hold on the clean data.
	det, err := detect.NativeDetector{}.Detect(context.Background(), ds.Clean, cfds)
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Violations) != 0 {
		t.Errorf("discovered CFDs violated on their own reference data: %d", len(det.Violations))
	}
	// Discovered CFDs catch injected errors on dirty data.
	dirty := datagen.Generate(datagen.Config{Tuples: 600, Seed: 9, NoiseRate: 0.05})
	det, err = detect.NativeDetector{}.Detect(context.Background(), dirty.Dirty, cfds)
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Vio) == 0 {
		t.Error("discovered CFDs catch nothing on dirty data")
	}
}

func TestDiscoverAssignsIDs(t *testing.T) {
	tab := mkTable(t, []string{"A", "B"}, [][]string{
		{"x", "1"}, {"x", "1"}, {"y", "2"}, {"y", "2"},
	})
	rep, err := Mine(context.Background(), tab.Snapshot(), Options{MinSupport: 2, MaxLHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range rep.CFDs {
		if c.ID == "" {
			t.Errorf("CFD %d has no ID", i)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults(1000)
	if o.MinSupport != 10 || o.MaxLHS != 2 || o.MaxPatternsPerFD != 8 ||
		o.MinConfidence != 1.0 || o.Workers < 1 {
		t.Errorf("defaults = %+v", o)
	}
	o = Options{}.withDefaults(50)
	if o.MinSupport != 2 {
		t.Errorf("small-n support = %d", o.MinSupport)
	}
}

func TestOptionsExplicitValuesWin(t *testing.T) {
	// The defaulting rule replaces only non-positive fields: an explicit
	// MinSupport of 1 must never be clamped to the max(2, N/100) default.
	o := Options{MinSupport: 1, MaxLHS: 5, MaxPatternsPerFD: 3, MinConfidence: 0.9}.withDefaults(100000)
	if o.MinSupport != 1 {
		t.Errorf("explicit MinSupport=1 was clamped to %d", o.MinSupport)
	}
	if o.MaxLHS != 5 || o.MaxPatternsPerFD != 3 || o.MinConfidence != 0.9 {
		t.Errorf("explicit values overridden: %+v", o)
	}
}

func TestMineMinSupportOneIsHonored(t *testing.T) {
	// With MinSupport 1 even a value covering a single tuple conditions a
	// rule; with the default (max(2, N/100)) it cannot.
	tab := mkTable(t, []string{"A", "B"}, [][]string{
		{"solo", "1"},
		{"x", "2"}, {"x", "2"}, {"x", "2"},
		{"y", "3"}, {"y", "3"},
	})
	rep, err := Mine(context.Background(), tab.Snapshot(), Options{MinSupport: 1, MaxLHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range rep.CFDs {
		if strings.Contains(c.String(), "A=solo") {
			found = true
		}
	}
	if !found {
		t.Errorf("MinSupport=1 did not admit the singleton cover; got:\n%s", render(rep.CFDs))
	}
	if rep.Options.MinSupport != 1 {
		t.Errorf("resolved MinSupport = %d, want 1", rep.Options.MinSupport)
	}
}

func TestMineDeterministicAcrossWorkers(t *testing.T) {
	ds := datagen.Generate(datagen.Config{Tuples: 500, Seed: 3})
	var base string
	for _, workers := range []int{1, 2, 8} {
		rep, err := Mine(context.Background(), ds.Clean.Snapshot(),
			Options{MinSupport: 10, MaxLHS: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got := render(rep.CFDs); base == "" {
			base = got
		} else if got != base {
			t.Errorf("workers=%d changed the output:\n%s\nvs\n%s", workers, got, base)
		}
	}
}

func TestMinePreCancelled(t *testing.T) {
	ds := datagen.Generate(datagen.Config{Tuples: 500, Seed: 3})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Mine(ctx, ds.Clean.Snapshot(), Options{}); err != context.Canceled {
		t.Errorf("pre-cancelled Mine returned %v, want context.Canceled", err)
	}
}

func TestMineApproximateConfidence(t *testing.T) {
	// A -> B holds on 9 of 10 tuples in the a1 class (plus a clean a2
	// class): global confidence = 11/12. MinConfidence 0.9 admits it as an
	// approximate FD; the default (exact) does not.
	rows := [][]string{}
	for i := 0; i < 9; i++ {
		rows = append(rows, []string{"a1", "b1"})
	}
	rows = append(rows, []string{"a1", "OOPS"})
	rows = append(rows, []string{"a2", "b2"}, []string{"a2", "b2"})
	tab := mkTable(t, []string{"A", "B"}, rows)

	exact, err := Mine(context.Background(), tab.Snapshot(), Options{MinSupport: 2, MaxLHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range exact.Candidates {
		if c.Kind == "global-fd" && c.CFD.LHS[0] == "A" && c.CFD.RHS[0] == "B" {
			t.Errorf("exact mining admitted a broken FD: %s", c.CFD)
		}
	}

	approx, err := Mine(context.Background(), tab.Snapshot(),
		Options{MinSupport: 2, MaxLHS: 1, MinConfidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range approx.Candidates {
		if c.Kind == "global-fd" && c.CFD.LHS[0] == "A" && c.CFD.RHS[0] == "B" {
			found = true
			want := 11.0 / 12.0
			if c.Confidence < want-1e-9 || c.Confidence > want+1e-9 {
				t.Errorf("confidence = %v, want %v", c.Confidence, want)
			}
		}
	}
	if !found {
		t.Error("approximate FD A -> B not admitted at MinConfidence 0.9")
	}
}

func render(cfds []*cfd.CFD) string {
	var b strings.Builder
	for _, c := range cfds {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}

package discovery

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"semandaq/internal/datagen"
)

func diffRules(a, b []string) string {
	inA := map[string]bool{}
	for _, s := range a {
		inA[s] = true
	}
	inB := map[string]bool{}
	for _, s := range b {
		inB[s] = true
	}
	var d strings.Builder
	for _, s := range a {
		if !inB[s] {
			d.WriteString("  legacy only: " + s + "\n")
		}
	}
	for _, s := range b {
		if !inA[s] {
			d.WriteString("  lattice only: " + s + "\n")
		}
	}
	return d.String()
}

// TestLatticeMatchesLegacy pins the tentpole contract: at MaxLHS <= 2 the
// PLI lattice miner returns a CFD set semantically identical to the legacy
// row-store miner's, on seeded generated datasets across noise levels and
// support thresholds.
func TestLatticeMatchesLegacy(t *testing.T) {
	cases := []struct {
		tuples  int
		seed    int64
		noise   float64
		support int
		maxLHS  int
	}{
		{300, 1, 0, 0, 1},
		{300, 1, 0, 0, 2},
		{300, 2, 0.02, 10, 2},
		{1000, 3, 0, 0, 2},
		{1000, 4, 0.02, 25, 1},
		{1000, 4, 0.02, 25, 2},
		{1000, 5, 0.10, 0, 2},
		{3000, 6, 0.10, 50, 2},
	}
	for _, tc := range cases {
		tc := tc
		name := fmt.Sprintf("n%d_seed%d_noise%g_sup%d_lhs%d",
			tc.tuples, tc.seed, tc.noise, tc.support, tc.maxLHS)
		t.Run(name, func(t *testing.T) {
			ds := datagen.Generate(datagen.Config{
				Tuples: tc.tuples, Seed: tc.seed, NoiseRate: tc.noise,
			})
			tab := ds.Dirty
			opts := Options{MinSupport: tc.support, MaxLHS: tc.maxLHS}
			legacy, err := LegacyDiscover(tab, opts)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Mine(context.Background(), tab.Snapshot(), opts)
			if err != nil {
				t.Fatal(err)
			}
			lc := CanonicalRules(legacy)
			nc := CanonicalRules(rep.CFDs)
			if len(lc) == 0 {
				t.Fatal("legacy miner found nothing; the cross-check is vacuous")
			}
			if fmt.Sprint(lc) != fmt.Sprint(nc) {
				t.Errorf("miners diverged (%d legacy vs %d lattice patterns):\n%s",
					len(lc), len(nc), diffRules(lc, nc))
			}
		})
	}
}

// TestLatticeMatchesLegacyAdversarial cross-checks hand-built tables that
// poke the value-model corners: NULLs on both sides, INT/FLOAT Equal
// classes, singleton covers with MinSupport 1.
func TestLatticeMatchesLegacyAdversarial(t *testing.T) {
	cases := []struct {
		name    string
		attrs   []string
		rows    [][]string
		support int
		maxLHS  int
	}{
		{
			name:  "nulls",
			attrs: []string{"A", "B", "C"},
			rows: [][]string{
				{"x", "", "1"}, {"x", "", "1"}, {"y", "p", "2"},
				{"y", "p", "2"}, {"", "q", "3"}, {"", "q", "3"},
			},
			support: 2, maxLHS: 2,
		},
		{
			name:  "numeric-equal-classes",
			attrs: []string{"A", "B"},
			rows: [][]string{
				{"1", "x"}, {"1.0", "x"}, {"2", "y"}, {"2.0", "y"}, {"3", "z"},
			},
			support: 2, maxLHS: 1,
		},
		{
			name:  "min-support-one",
			attrs: []string{"A", "B", "C"},
			rows: [][]string{
				{"a", "1", "p"}, {"b", "1", "p"}, {"c", "2", "q"}, {"d", "2", "q"},
			},
			support: 1, maxLHS: 2,
		},
		{
			name:  "pattern-cap",
			attrs: []string{"A", "B"},
			rows: [][]string{
				// Many conditional values for A so MaxPatternsPerFD bites.
				{"a1", "1"}, {"a1", "1"}, {"a2", "2"}, {"a2", "2"},
				{"a3", "3"}, {"a3", "3"}, {"a4", "4"}, {"a4", "4"},
				{"a5", "5"}, {"a5", "5"}, {"a6", "6"}, {"a6", "6"},
				{"a7", "7"}, {"a7", "7"}, {"a8", "8"}, {"a8", "8"},
				{"a9", "9"}, {"a9", "9"}, {"a9", "99"},
			},
			support: 2, maxLHS: 1,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tab := mkTable(t, tc.attrs, tc.rows)
			opts := Options{MinSupport: tc.support, MaxLHS: tc.maxLHS, MaxPatternsPerFD: 3}
			legacy, err := LegacyDiscover(tab, opts)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Mine(context.Background(), tab.Snapshot(), opts)
			if err != nil {
				t.Fatal(err)
			}
			lc := CanonicalRules(legacy)
			nc := CanonicalRules(rep.CFDs)
			if fmt.Sprint(lc) != fmt.Sprint(nc) {
				t.Errorf("miners diverged:\n%s", diffRules(lc, nc))
			}
		})
	}
}

// TestConstantMinimalityIsTransitive pins the depth-3 pruning fix: D=d is
// constant over the cover of {A=a}, so [A=a] -> [D=d] is emitted at depth
// 1 and every superset rule is redundant. The depth-2 supersets ({A=a,B=b}
// and {A=a,C=c}) are pruned without being emitted; the pruning must still
// mark them, or the depth-3 itemset {A=a,B=b,C=c} — whose only emitted
// ancestor is two levels up — would re-emit the rule (the legacy miner's
// defect).
func TestConstantMinimalityIsTransitive(t *testing.T) {
	tab := mkTable(t, []string{"A", "B", "C", "D"}, [][]string{
		{"a", "b", "c", "d"},
		{"a", "b", "c", "d"},
		{"a", "b", "c", "d"},
		// Breaks D-constancy over the {B=b}, {C=c} and {B=b,C=c} covers,
		// so no depth-1 or depth-2 rule from B/C hides the defect.
		{"x", "b", "c", "e"},
		{"x", "b", "c", "e"},
	})
	rep, err := Mine(context.Background(), tab.Snapshot(), Options{MinSupport: 2, MaxLHS: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Candidates {
		if c.Kind != "constant" || c.CFD.RHS[0] != "D" {
			continue
		}
		if len(c.CFD.LHS) > 1 && containsStr(c.CFD.LHS, "A") {
			t.Errorf("non-minimal constant rule emitted: %s", c.CFD)
		}
	}
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// TestLatticeMinimalAtDepth3 pins the one intended divergence: the legacy
// miner's non-transitive pruning emits redundant rules at MaxLHS >= 3 that
// the lattice miner suppresses — every lattice rule must still be in the
// legacy set (the lattice set is a minimal subset).
func TestLatticeMinimalAtDepth3(t *testing.T) {
	ds := datagen.Generate(datagen.Config{Tuples: 1000, Seed: 11})
	opts := Options{MinSupport: 25, MaxLHS: 3}
	legacy, err := LegacyDiscover(ds.Clean, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Mine(context.Background(), ds.Clean.Snapshot(), opts)
	if err != nil {
		t.Fatal(err)
	}
	lc := CanonicalRules(legacy)
	nc := CanonicalRules(rep.CFDs)
	inLegacy := map[string]bool{}
	for _, s := range lc {
		inLegacy[s] = true
	}
	for _, s := range nc {
		if !inLegacy[s] {
			t.Errorf("lattice rule missing from legacy set: %s", s)
		}
	}
	if len(nc) > len(lc) {
		t.Errorf("lattice emitted more patterns (%d) than legacy (%d)", len(nc), len(lc))
	}
}

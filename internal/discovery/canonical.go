package discovery

import (
	"fmt"
	"sort"
	"strings"

	"semandaq/internal/cfd"
)

// CanonicalRules renders a CFD set as a sorted list of per-pattern strings
// — table, LHS attributes with their pattern cells, RHS attribute with its
// cell — so two miners can be compared for semantic identity regardless of
// rule IDs, tableau merging or emission order. It is the single definition
// of the miner-equivalence contract, shared by the package's cross-check
// tests and the D6 benchmark's verification pass.
func CanonicalRules(cfds []*cfd.CFD) []string {
	var out []string
	for _, c := range cfds {
		for _, pt := range c.Tableau {
			var b strings.Builder
			b.WriteString(strings.ToLower(c.Table))
			b.WriteString(":[")
			for i, a := range c.LHS {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%s=%s", a, pt.LHS[i])
			}
			fmt.Fprintf(&b, "] -> [%s=%s]", c.RHS[0], pt.RHS[0])
			out = append(out, b.String())
		}
	}
	sort.Strings(out)
	return out
}

// Package server exposes Semandaq over HTTP with a JSON API — the
// reproduction's stand-in for the paper's EJB data-quality servers plus the
// web-container data explorer. Every demo capability is an endpoint:
// specifying CFDs (with the satisfiability gate), SQL-based detection,
// auditing, exploration drill-down, repair with review, incremental
// monitoring, and discovery from reference data.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"iter"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"semandaq/internal/core"
	"semandaq/internal/detect"
	"semandaq/internal/explore"
	"semandaq/internal/monitor"
	"semandaq/internal/relstore"
	"semandaq/internal/repair"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// Server is the HTTP facade over one Semandaq session. Monitors live in
// the session's registry (core.Semandaq), so the HTTP mutation endpoints
// and any embedded library callers share one write path.
type Server struct {
	s  *core.Semandaq
	mu sync.Mutex
	// pending holds the last computed candidate repair per table, for the
	// review-then-apply flow.
	pending map[string]*repair.Result
}

// New builds a server over the session.
func New(s *core.Semandaq) *Server {
	return &Server{
		s:       s,
		pending: map[string]*repair.Result{},
	}
}

// Handler returns the routed http.Handler.
func (sv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/tables", sv.handleTables)
	mux.HandleFunc("POST /api/tables/{name}", sv.handleLoadCSV)
	mux.HandleFunc("GET /api/tables/{name}", sv.handleTable)
	// Row mutations. Writes route through the table's active monitor when
	// one exists (incremental detection sees them immediately) and return
	// the table version they produced; 409 while a monitor is being
	// replaced.
	mux.HandleFunc("POST /api/tables/{name}/rows", sv.handleInsertRow)
	mux.HandleFunc("PATCH /api/tables/{name}/rows/{id}", sv.handleSetCell)
	mux.HandleFunc("DELETE /api/tables/{name}/rows/{id}", sv.handleDeleteRow)
	mux.HandleFunc("POST /api/cfds/{table}", sv.handleRegisterCFDs)
	mux.HandleFunc("GET /api/cfds/{table}", sv.handleListCFDs)
	mux.HandleFunc("GET /api/consistency/{table}", sv.handleConsistency)
	// ?engine=sql|native|parallel|columnar&workers=N&cfds=id1,id2&limit=K
	// — and &stream=1 switches to NDJSON streaming over the sharded
	// columnar detector, one violation per line as it is found.
	mux.HandleFunc("POST /api/detect/{table}", sv.handleDetect)
	mux.HandleFunc("GET /api/detect/{table}", sv.handleDetect) // curl -N friendly
	mux.HandleFunc("GET /api/detect/{table}/sql", sv.handleDetectSQL)
	mux.HandleFunc("GET /api/audit/{table}", sv.handleAudit)
	mux.HandleFunc("GET /api/explore/{table}/cfds", sv.handleExploreCFDs)
	mux.HandleFunc("GET /api/explore/{table}/patterns", sv.handleExplorePatterns)
	mux.HandleFunc("GET /api/explore/{table}/lhs", sv.handleExploreLHS)
	mux.HandleFunc("GET /api/explore/{table}/map", sv.handleExploreMap)
	mux.HandleFunc("GET /api/explore/{table}/tuple/{id}", sv.handleExploreTuple)
	mux.HandleFunc("POST /api/repair/{table}", sv.handleRepair)
	mux.HandleFunc("POST /api/repair/{table}/apply", sv.handleRepairApply)
	mux.HandleFunc("POST /api/monitor/{table}", sv.handleMonitorStart)
	mux.HandleFunc("POST /api/monitor/{table}/updates", sv.handleMonitorUpdates)
	mux.HandleFunc("POST /api/discover/{table}", sv.handleDiscover)
	return mux
}

// statusClientClosedRequest is the nginx 499 convention: the client went
// away and the request's work was cancelled server-side.
const statusClientClosedRequest = 499

// writeJSON writes a 200 JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeError maps an error to a JSON error payload.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// jsonValue converts a types.Value to its JSON representation.
func jsonValue(v types.Value) any {
	switch v.Kind() {
	case types.KindNull:
		return nil
	case types.KindBool:
		return v.Bool()
	case types.KindInt:
		return v.Int()
	case types.KindFloat:
		return v.Float()
	default:
		return v.Str()
	}
}

func jsonRow(row relstore.Tuple) []any {
	out := make([]any, len(row))
	for i, v := range row {
		out[i] = jsonValue(v)
	}
	return out
}

func (sv *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"tables": sv.s.Tables()})
}

func (sv *Server) handleLoadCSV(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	tab, err := sv.s.LoadCSV(name, r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, map[string]any{
		"table":  tab.Schema().Name,
		"attrs":  tab.Schema().AttrNames(),
		"tuples": tab.Len(),
	})
}

func (sv *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	tab, err := sv.s.Table(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	limit := 100
	if l := r.URL.Query().Get("limit"); l != "" {
		if n, err := strconv.Atoi(l); err == nil && n >= 0 {
			limit = n
		}
	}
	offset := 0
	if o := r.URL.Query().Get("offset"); o != "" {
		if n, err := strconv.Atoi(o); err == nil && n >= 0 {
			offset = n
		}
	}
	type rowOut struct {
		ID  int64 `json:"id"`
		Row []any `json:"row"`
	}
	// One pinned snapshot: the page, the tuple count and the version all
	// describe the same table state.
	snap := tab.Snapshot()
	var rows []rowOut
	i := 0
	snap.Scan(func(id relstore.TupleID, row relstore.Tuple) bool {
		if i >= offset && len(rows) < limit {
			rows = append(rows, rowOut{ID: int64(id), Row: jsonRow(row)})
		}
		i++
		return len(rows) < limit || i <= offset
	})
	writeJSON(w, map[string]any{
		"table":   snap.Schema().Name,
		"attrs":   snap.Schema().AttrNames(),
		"tuples":  snap.Len(),
		"version": snap.Version(),
		"rows":    rows,
	})
}

func (sv *Server) handleRegisterCFDs(w http.ResponseWriter, r *http.Request) {
	table := r.PathValue("table")
	var body struct {
		Text string `json:"text"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cfds, err := sv.s.RegisterCFDText(table, body.Text)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var out []map[string]any
	for _, c := range cfds {
		out = append(out, map[string]any{"id": c.ID, "cfd": c.String()})
	}
	writeJSON(w, map[string]any{"registered": out})
}

func (sv *Server) handleListCFDs(w http.ResponseWriter, r *http.Request) {
	cfds := sv.s.CFDs(r.PathValue("table"))
	var out []map[string]any
	for _, c := range cfds {
		out = append(out, map[string]any{
			"id":       c.ID,
			"lhs":      c.LHS,
			"rhs":      c.RHS,
			"patterns": len(c.Tableau),
			"text":     c.String(),
		})
	}
	writeJSON(w, map[string]any{"cfds": out})
}

func (sv *Server) handleConsistency(w http.ResponseWriter, r *http.Request) {
	rep, err := sv.s.CheckConsistency(r.PathValue("table"), nil)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out := map[string]any{"satisfiable": rep.Satisfiable}
	if rep.Conflict != nil {
		out["conflict"] = rep.Conflict.String()
	}
	writeJSON(w, out)
}

// detectOptions maps the detect endpoint's query parameters onto request
// options. The engine defaults to the paper's SQL technique for blocking
// requests (the original endpoint contract) and to the sharded columnar
// detector for streaming ones.
func detectOptions(r *http.Request, stream bool) ([]core.Option, error) {
	q := r.URL.Query()
	var opts []core.Option
	if e := q.Get("engine"); e != "" {
		kind, err := core.ParseDetectorKind(e)
		if err != nil {
			return nil, err
		}
		opts = append(opts, core.WithEngine(kind))
	} else if !stream {
		opts = append(opts, core.WithEngine(core.SQLDetection))
	}
	if ws := q.Get("workers"); ws != "" {
		n, err := strconv.Atoi(ws)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad workers value %q", ws)
		}
		opts = append(opts, core.WithWorkers(n)) // request-scoped; does not touch the shared session
	}
	if ids := q.Get("cfds"); ids != "" {
		opts = append(opts, core.WithCFDs(strings.Split(ids, ",")...))
	}
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad limit value %q", ls)
		}
		opts = append(opts, core.WithLimit(n))
	}
	return opts, nil
}

// reportJSON shapes a detection report for the wire; the blocking and
// streaming detect endpoints share it.
func reportJSON(rep *detect.Report) map[string]any {
	perCFD := map[string]any{}
	for id, st := range rep.PerCFD {
		perCFD[id] = map[string]int{
			"singleTuple": st.SingleTuple,
			"multiTuple":  st.MultiTuple,
			"groups":      st.Groups,
		}
	}
	vio := map[string]int{}
	for id, n := range rep.Vio {
		vio[strconv.FormatInt(int64(id), 10)] = n
	}
	return map[string]any{
		"table":      rep.Table,
		"tuples":     rep.TupleCount,
		"version":    rep.Version,
		"violations": rep.TotalViolations(),
		"dirty":      len(rep.Vio),
		"maxVio":     rep.MaxVio(),
		"perCFD":     perCFD,
		"vio":        vio,
	}
}

// violationJSON shapes one streamed violation as an NDJSON line payload.
func violationJSON(v detect.Violation) map[string]any {
	out := map[string]any{
		"cfd":   v.CFDID,
		"kind":  v.Kind.String(),
		"tuple": int64(v.TupleID),
		"attr":  v.Attr,
	}
	if v.Kind == detect.SingleTuple {
		out["pattern"] = v.Pattern
		out["expected"] = jsonValue(v.Expected)
		out["got"] = jsonValue(v.Got)
	} else {
		out["partners"] = v.Partners
	}
	return out
}

func (sv *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	stream := false
	if s := r.URL.Query().Get("stream"); s == "1" || s == "true" {
		stream = true
	}
	opts, err := detectOptions(r, stream)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	table := r.PathValue("table")
	start := time.Now()
	if stream {
		sv.streamDetect(w, r, table, opts, start)
		return
	}
	rep, err := sv.s.Detect(r.Context(), table, opts...)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out := reportJSON(rep)
	out["durationMs"] = float64(time.Since(start)) / float64(time.Millisecond)
	writeJSON(w, out)
}

// streamDetect writes the detection stream as NDJSON: one violation object
// per line as the sharded scan finds it, flushed eagerly so a `curl -N`
// client sees the first violation long before the scan completes, and a
// terminal {"done":true,...} line with the totals and the pinned table
// version the whole stream evaluated. A dropped client cancels the scan
// via the request context. The full Report is never materialized.
func (sv *Server) streamDetect(w http.ResponseWriter, r *http.Request, table string, opts []core.Option, start time.Time) {
	seq, version, err := sv.s.DetectStreamVersion(r.Context(), table, opts...)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	next, stop := iter.Pull2(seq)
	defer stop()
	// Pull the first element before committing to a 200: a bad table,
	// unknown CFD id or empty constraint set still gets a proper status.
	v, err, ok := next()
	if ok && err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	count := 0
	lastFlush := time.Now()
	for ; ok; v, err, ok = next() {
		if err != nil {
			// Mid-stream errors ride on a line of their own: the status
			// header is long gone.
			enc.Encode(map[string]any{"error": err.Error()})
			return
		}
		if enc.Encode(violationJSON(v)) != nil {
			return // client went away; loop exit cancels the scan
		}
		count++
		// Eager flushing keeps the stream live without a syscall per
		// line: the first lines go out immediately (the whole point of
		// streaming), then batches, with a time floor so a slow scan
		// with rare violations still trickles.
		if flusher != nil && (count <= 16 || count%256 == 0 || time.Since(lastFlush) > 100*time.Millisecond) {
			flusher.Flush()
			lastFlush = time.Now()
		}
	}
	enc.Encode(map[string]any{
		"done":       true,
		"violations": count,
		"version":    version,
		"durationMs": float64(time.Since(start)) / float64(time.Millisecond),
	})
}

func (sv *Server) handleDetectSQL(w http.ResponseWriter, r *http.Request) {
	stmts, err := sv.s.DetectionSQL(r.PathValue("table"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, map[string]any{"sql": stmts})
}

func (sv *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	a, err := sv.s.Audit(r.Context(), r.PathValue("table"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	attrs := make([]map[string]any, 0, len(a.Attrs))
	for _, q := range a.Attrs {
		attrs = append(attrs, map[string]any{
			"attr":        q.Attr,
			"pctVerified": q.PctVerified(),
			"pctProbably": q.PctProbably(),
			"pctArguably": q.PctArguably(),
			"dirty":       q.Dirty,
		})
	}
	pie := make([]map[string]any, 0, len(a.Pie))
	for _, s := range a.Pie {
		pie = append(pie, map[string]any{"cfd": s.CFDID, "violations": s.Violations})
	}
	writeJSON(w, map[string]any{
		"table":         a.Table,
		"tuples":        a.TupleCount,
		"version":       a.Version,
		"verifiedClean": a.VerifiedTuples,
		"probablyClean": a.ProbablyTuples,
		"arguablyClean": a.ArguablyTuples,
		"dirty":         a.DirtyTuples,
		"attrs":         attrs,
		"pie":           pie,
		"stats": map[string]any{
			"totalVio": a.Stats.TotalVio,
			"minVio":   a.Stats.MinVio,
			"maxVio":   a.Stats.MaxVio,
			"avgVio":   a.Stats.AvgVio,
			"groups":   a.Stats.Groups,
			"avgGroup": a.Stats.AvgGroup,
		},
		"text": a.Render(),
	})
}

func (sv *Server) explorer(r *http.Request) (*explore.Explorer, error) {
	return sv.s.Explore(r.Context(), r.PathValue("table"))
}

func (sv *Server) handleExploreCFDs(w http.ResponseWriter, r *http.Request) {
	ex, err := sv.explorer(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, map[string]any{"cfds": ex.CFDs()})
}

func (sv *Server) handleExplorePatterns(w http.ResponseWriter, r *http.Request) {
	ex, err := sv.explorer(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pats, err := ex.Patterns(r.URL.Query().Get("cfd"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, map[string]any{"patterns": pats})
}

func (sv *Server) handleExploreLHS(w http.ResponseWriter, r *http.Request) {
	ex, err := sv.explorer(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pattern, _ := strconv.Atoi(r.URL.Query().Get("pattern"))
	groups, err := ex.LHSGroups(r.URL.Query().Get("cfd"), pattern)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out := make([]map[string]any, 0, len(groups))
	for _, g := range groups {
		vals := make([]any, len(g.Values))
		for i, v := range g.Values {
			vals[i] = jsonValue(v)
		}
		out = append(out, map[string]any{
			"values":     vals,
			"tuples":     g.Tuples,
			"rhsValues":  g.RHSValues,
			"violations": g.Violations,
		})
	}
	writeJSON(w, map[string]any{"groups": out})
}

func (sv *Server) handleExploreMap(w http.ResponseWriter, r *http.Request) {
	ex, err := sv.explorer(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	entries, hist := ex.QualityMap()
	out := make([]map[string]any, 0, len(entries))
	for _, e := range entries {
		out = append(out, map[string]any{
			"id": int64(e.ID), "vio": e.Vio, "bucket": e.Bucket,
		})
	}
	writeJSON(w, map[string]any{"map": out, "histogram": hist})
}

func (sv *Server) handleExploreTuple(w http.ResponseWriter, r *http.Request) {
	ex, err := sv.explorer(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad tuple id: %w", err))
		return
	}
	rels, err := ex.ForTuple(relstore.TupleID(id))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	out := make([]map[string]any, 0, len(rels))
	for _, rel := range rels {
		out = append(out, map[string]any{
			"cfd":      rel.CFDID,
			"pattern":  rel.Pattern,
			"text":     rel.Text,
			"violated": rel.Violated,
			"kind":     rel.Kind.String(),
		})
	}
	writeJSON(w, map[string]any{"relevant": out})
}

// modJSON serializes a repair modification for review.
func modJSON(m repair.Modification) map[string]any {
	alts := make([]map[string]any, 0, len(m.Alternatives))
	for _, a := range m.Alternatives {
		alts = append(alts, map[string]any{"value": jsonValue(a.Value), "cost": a.Cost})
	}
	return map[string]any{
		"tuple": int64(m.TupleID), "attr": m.Attr,
		"old": jsonValue(m.Old), "new": jsonValue(m.New),
		"cost": m.Cost, "cfd": m.CFDID, "reason": m.Reason,
		"alternatives": alts,
	}
}

func (sv *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	table := r.PathValue("table")
	res, err := sv.s.Repair(r.Context(), table)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sv.mu.Lock()
	sv.pending[table] = res
	sv.mu.Unlock()
	mods := make([]map[string]any, 0, len(res.Modifications))
	for _, m := range res.Modifications {
		mods = append(mods, modJSON(m))
	}
	writeJSON(w, map[string]any{
		"converged":     res.Converged,
		"remaining":     res.Remaining,
		"passes":        res.Passes,
		"cost":          res.Cost,
		"modifications": mods,
	})
}

func (sv *Server) handleRepairApply(w http.ResponseWriter, r *http.Request) {
	table := r.PathValue("table")
	sv.mu.Lock()
	res := sv.pending[table]
	sv.mu.Unlock()
	if res == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("no pending repair for %s; POST /api/repair/%s first", table, table))
		return
	}
	applied, skipped, err := sv.s.ApplyRepair(table, res.Modifications)
	if err != nil {
		// The pending repair stays available: a transient 409 (monitor
		// being replaced) is retryable without recomputing the repair.
		writeError(w, mutationStatus(err), err)
		return
	}
	// Consumed only on success. A concurrent duplicate apply is harmless:
	// the second pass skips every modification whose Old value no longer
	// matches.
	sv.mu.Lock()
	delete(sv.pending, table)
	sv.mu.Unlock()
	sk := make([]map[string]any, 0, len(skipped))
	for _, m := range skipped {
		sk = append(sk, modJSON(m))
	}
	writeJSON(w, map[string]any{"applied": applied, "skipped": sk})
}

func (sv *Server) handleMonitorStart(w http.ResponseWriter, r *http.Request) {
	table := r.PathValue("table")
	cleansed := r.URL.Query().Get("cleansed") == "true"
	// Monitor registers itself in the session: mutations route through it
	// from here on. A concurrent start of the same table's monitor gets
	// 409 instead of racing the handover.
	m, err := sv.s.Monitor(r.Context(), table, core.WithCleansed(cleansed))
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, core.ErrMonitorBusy) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, map[string]any{
		"monitoring": table,
		"cleansed":   cleansed,
		"dirty":      m.DirtyCount(),
		"version":    m.Version(),
	})
}

// updateJSON is the wire form of one monitor update.
type updateJSON struct {
	Op    string `json:"op"` // insert | delete | set
	Row   []any  `json:"row,omitempty"`
	ID    int64  `json:"id,omitempty"`
	Attr  string `json:"attr,omitempty"`
	Value any    `json:"value,omitempty"`
}

// valueFromJSON maps a decoded JSON value to a types.Value without schema
// context. JSON numbers arrive as float64; integral ones become Int (the
// only reasonable guess for an untyped column — JSON cannot distinguish 5
// from 5.0).
func valueFromJSON(v any) types.Value {
	switch x := v.(type) {
	case nil:
		return types.Null
	case bool:
		return types.NewBool(x)
	case float64:
		if x == float64(int64(x)) {
			return types.NewInt(int64(x))
		}
		return types.NewFloat(x)
	case string:
		return types.NewString(x)
	default:
		return types.NewString(fmt.Sprint(x))
	}
}

// valueForAttr coerces a decoded JSON value using the attribute's declared
// type, falling back to valueFromJSON's inference for untyped columns.
// Without this, JSON 5.0 sent to a FLOAT column would silently become
// Int(5) and flip the cell's kind, breaking Equal comparisons against the
// column's other values.
func valueForAttr(sc *schema.Relation, pos int, v any) types.Value {
	if v == nil {
		return types.Null
	}
	switch sc.Attrs[pos].Type {
	case types.KindFloat:
		switch x := v.(type) {
		case float64:
			return types.NewFloat(x)
		case bool:
			// fall through to inference below
		case string:
			if f, err := strconv.ParseFloat(x, 64); err == nil {
				return types.NewFloat(f)
			}
		}
	case types.KindInt:
		switch x := v.(type) {
		case float64:
			if x == float64(int64(x)) {
				return types.NewInt(int64(x))
			}
			return types.NewFloat(x) // non-integral: keep the value, not the type
		case string:
			if n, err := strconv.ParseInt(x, 10, 64); err == nil {
				return types.NewInt(n)
			}
		}
	case types.KindString:
		if x, ok := v.(string); ok {
			return types.NewString(x)
		}
	case types.KindBool:
		if x, ok := v.(bool); ok {
			return types.NewBool(x)
		}
	}
	return valueFromJSON(v)
}

// rowForSchema coerces a JSON row against the table schema.
func rowForSchema(sc *schema.Relation, in []any) (relstore.Tuple, error) {
	if len(in) != sc.Arity() {
		return nil, fmt.Errorf("row has %d values, table %s has %d columns", len(in), sc.Name, sc.Arity())
	}
	row := make(relstore.Tuple, len(in))
	for i, v := range in {
		row[i] = valueForAttr(sc, i, v)
	}
	return row, nil
}

// mutationStatus maps a session write-path error to an HTTP status.
func mutationStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrMonitorBusy), errors.Is(err, core.ErrNoMonitor):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func (sv *Server) handleInsertRow(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	tab, err := sv.s.Table(name)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	var body struct {
		Row []any `json:"row"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	row, err := rowForSchema(tab.Schema(), body.Row)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id, version, err := sv.s.Insert(name, row)
	if err != nil {
		writeError(w, mutationStatus(err), err)
		return
	}
	writeJSON(w, map[string]any{"id": int64(id), "version": version})
}

func (sv *Server) handleSetCell(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	tab, err := sv.s.Table(name)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad tuple id: %w", err))
		return
	}
	var body struct {
		Attr  string `json:"attr"`
		Value any    `json:"value"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sc := tab.Schema()
	pos, ok := sc.Pos(body.Attr)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("no attribute %q in %s", body.Attr, name))
		return
	}
	version, err := sv.s.SetCell(name, relstore.TupleID(id), body.Attr, valueForAttr(sc, pos, body.Value))
	if err != nil {
		writeError(w, mutationStatus(err), err)
		return
	}
	writeJSON(w, map[string]any{"id": id, "version": version})
}

func (sv *Server) handleDeleteRow(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, err := sv.s.Table(name); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad tuple id: %w", err))
		return
	}
	version, err := sv.s.Delete(name, relstore.TupleID(id))
	if err != nil {
		writeError(w, mutationStatus(err), err)
		return
	}
	writeJSON(w, map[string]any{"deleted": id, "version": version})
}

func (sv *Server) handleMonitorUpdates(w http.ResponseWriter, r *http.Request) {
	table := r.PathValue("table")
	tab, err := sv.s.Table(table)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	sc := tab.Schema()
	var body struct {
		Updates []updateJSON `json:"updates"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	batch := make([]monitor.Update, 0, len(body.Updates))
	for _, u := range body.Updates {
		switch u.Op {
		case "insert":
			row, err := rowForSchema(sc, u.Row)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			batch = append(batch, monitor.Update{Op: monitor.OpInsert, Row: row})
		case "delete":
			batch = append(batch, monitor.Update{Op: monitor.OpDelete, ID: relstore.TupleID(u.ID)})
		case "set":
			val := valueFromJSON(u.Value)
			if pos, ok := sc.Pos(u.Attr); ok {
				val = valueForAttr(sc, pos, u.Value)
			}
			batch = append(batch, monitor.Update{
				Op: monitor.OpSet, ID: relstore.TupleID(u.ID),
				Attr: u.Attr, Value: val})
		default:
			writeError(w, http.StatusBadRequest, fmt.Errorf("unknown op %q", u.Op))
			return
		}
	}
	res, err := sv.s.ApplyUpdates(table, batch)
	if err != nil {
		switch {
		case errors.Is(err, core.ErrNoMonitor):
			writeError(w, http.StatusConflict, fmt.Errorf("no monitor for %s; POST /api/monitor/%s first", table, table))
		case errors.Is(err, core.ErrMonitorBusy):
			writeError(w, http.StatusConflict, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	repairs := make([]map[string]any, 0, len(res.Repairs))
	for _, mod := range res.Repairs {
		repairs = append(repairs, modJSON(mod))
	}
	inserted := make([]int64, 0, len(res.Inserted))
	for _, id := range res.Inserted {
		inserted = append(inserted, int64(id))
	}
	writeJSON(w, map[string]any{
		"inserted": inserted,
		"dirty":    res.Dirty,
		"repairs":  repairs,
		"version":  res.Version,
	})
}

// handleDiscover runs the lattice miner over the table. The request
// context is threaded into the search, so a client that disconnects
// mid-mine cancels the lattice workers instead of leaving them running.
// Body (all fields optional; non-positive selects the discovery default):
//
//	{"minSupport": 100, "maxLHS": 3, "minConfidence": 0.95,
//	 "maxPatterns": 8, "workers": 4}
//
// The response carries the snapshot version the rules were mined from,
// per-candidate support and confidence, and the merged registrable set.
func (sv *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	table := r.PathValue("table")
	var body struct {
		MinSupport    int     `json:"minSupport"`
		MaxLHS        int     `json:"maxLHS"`
		MinConfidence float64 `json:"minConfidence"`
		MaxPatterns   int     `json:"maxPatterns"`
		Workers       int     `json:"workers"`
	}
	if r.Body != nil {
		_ = json.NewDecoder(r.Body).Decode(&body) // defaults on empty body
	}
	start := time.Now()
	rep, err := sv.s.Discover(r.Context(), table,
		core.WithMinSupport(body.MinSupport),
		core.WithMaxLHS(body.MaxLHS),
		core.WithMinConfidence(body.MinConfidence),
		core.WithMaxPatterns(body.MaxPatterns),
		core.WithWorkers(body.Workers))
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			writeError(w, statusClientClosedRequest, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out := make([]map[string]any, 0, len(rep.CFDs))
	for _, c := range rep.CFDs {
		out = append(out, map[string]any{"id": c.ID, "text": c.String()})
	}
	cands := make([]map[string]any, 0, len(rep.Candidates))
	for _, c := range rep.Candidates {
		cands = append(cands, map[string]any{
			"text":       c.CFD.String(),
			"kind":       c.Kind,
			"support":    c.Support,
			"confidence": c.Confidence,
		})
	}
	writeJSON(w, map[string]any{
		"discovered": out,
		"candidates": cands,
		"version":    rep.Version,
		"tuples":     rep.Tuples,
		"durationMs": time.Since(start).Milliseconds(),
	})
}

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"semandaq/internal/core"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// TestRowMutationEndpoints drives the insert/patch/delete row API and
// checks each response carries the produced table version.
func TestRowMutationEndpoints(t *testing.T) {
	ts := testServer(t)

	out := do(t, ts, "POST", "/api/tables/customer/rows",
		`{"row":["Zoe","UK","Edinburgh","EH2 4SD","Mayfield",44,131]}`, http.StatusOK)
	id := int64(out["id"].(float64))
	v1 := out["version"].(float64)
	if v1 <= 0 {
		t.Fatalf("insert version = %v", v1)
	}

	out = do(t, ts, "PATCH", fmt.Sprintf("/api/tables/customer/rows/%d", id),
		`{"attr":"STR","value":"Newstreet"}`, http.StatusOK)
	v2 := out["version"].(float64)
	if v2 <= v1 {
		t.Fatalf("patch version %v not after insert version %v", v2, v1)
	}

	// The table endpoint reflects the mutations and the same version.
	out = do(t, ts, "GET", "/api/tables/customer?limit=100", "", http.StatusOK)
	if out["version"].(float64) != v2 {
		t.Fatalf("table version %v, want %v", out["version"], v2)
	}
	rows := out["rows"].([]any)
	last := rows[len(rows)-1].(map[string]any)
	if int64(last["id"].(float64)) != id || last["row"].([]any)[4] != "Newstreet" {
		t.Fatalf("mutated row = %v", last)
	}

	out = do(t, ts, "DELETE", fmt.Sprintf("/api/tables/customer/rows/%d", id), "", http.StatusOK)
	if out["version"].(float64) <= v2 {
		t.Fatalf("delete version %v not after %v", out["version"], v2)
	}

	// Unknown table and bad rows error cleanly.
	do(t, ts, "POST", "/api/tables/ghost/rows", `{"row":["x"]}`, http.StatusNotFound)
	do(t, ts, "POST", "/api/tables/customer/rows", `{"row":["too","short"]}`, http.StatusBadRequest)
	do(t, ts, "DELETE", "/api/tables/customer/rows/99999", "", http.StatusBadRequest)
}

// TestMutationsRouteThroughMonitor: with a monitor active, a row inserted
// via the mutation endpoint is tracked immediately (dirty count moves
// without any re-detection).
func TestMutationsRouteThroughMonitor(t *testing.T) {
	ts := testServer(t)
	out := do(t, ts, "POST", "/api/monitor/customer", "", http.StatusOK)
	startDirty := int(out["dirty"].(float64))
	// CC=44 with CNT=US violates phi4 ([CC=44] -> [CNT=UK]).
	do(t, ts, "POST", "/api/tables/customer/rows",
		`{"row":["Eve","US","Boston","02134","Elm",44,617]}`, http.StatusOK)
	out = do(t, ts, "POST", "/api/monitor/customer/updates", `{"updates":[]}`, http.StatusOK)
	// The insert went through the monitor's tracker: the tracked dirty
	// count includes the violating row without any fresh detection pass.
	if after := int(out["dirty"].(float64)); after <= startDirty {
		t.Fatalf("monitor missed the violating insert: dirty %d -> %d", startDirty, after)
	}
}

// TestMutationEndpointsDriveIncrementalServing: edits arriving over the
// HTTP mutation API feed the relstore change log, so the next detection's
// snapshot is delta-patched from the previous version's caches instead of
// batch-rebuilt. Asserted on the global build-ops counters (this package's
// tests run sequentially, so the measurement window is ours).
func TestMutationEndpointsDriveIncrementalServing(t *testing.T) {
	ts := testServer(t)
	// Warm the version caches: the first detection pays the batch build.
	do(t, ts, "POST", "/api/detect/customer?engine=columnar", "", http.StatusOK)
	// Rewrite Ben's CNT through the HTTP surface only. Both the old value
	// (US — Joe keeps its first occurrence) and the new one (UK) stay in
	// the CNT dictionary at their positions, so the patcher can splice
	// rather than rebuild the column.
	do(t, ts, "PATCH", "/api/tables/customer/rows/4",
		`{"attr":"CNT","value":"UK"}`, http.StatusOK)

	before := relstore.ReadBuildOps()
	do(t, ts, "POST", "/api/detect/customer?engine=columnar", "", http.StatusOK)
	ops := relstore.ReadBuildOps().Sub(before)
	if ops.PatchedSnapshots != 1 || ops.BatchSnapshots != 0 {
		t.Fatalf("detect after an HTTP edit rebuilt the snapshot instead of patching: %+v", ops)
	}
	// Both values already exist in the dictionary: the single-cell edit
	// must not re-intern the column.
	if ops.InternedCells != 0 || ops.RebuiltColumns != 0 {
		t.Fatalf("single-cell HTTP edit interned %d cells, rebuilt %d columns: %+v",
			ops.InternedCells, ops.RebuiltColumns, ops)
	}
}

// TestValueCoercionUsesSchemaType: JSON 5.0 arriving for a FLOAT column
// stays a float (the old inference silently flipped it to Int, breaking
// Equal comparisons against the column's other float values).
func TestValueCoercionUsesSchemaType(t *testing.T) {
	s := core.New()
	tab := relstore.NewTable(schema.NewTyped("readings",
		schema.Attribute{Name: "ID", Type: types.KindInt},
		schema.Attribute{Name: "TEMP", Type: types.KindFloat},
	))
	tab.MustInsert(relstore.Tuple{types.NewInt(1), types.NewFloat(20.5)})
	s.RegisterTable(tab)
	ts := httptest.NewServer(New(s).Handler())
	t.Cleanup(ts.Close)

	// Monitor-style set with an integral JSON number on the float column.
	if _, err := s.RegisterCFDText("readings", `readings: [ID=_] -> [TEMP=_]`); err != nil {
		t.Fatal(err)
	}
	do(t, ts, "POST", "/api/monitor/readings", "", http.StatusOK)
	body, _ := json.Marshal(map[string]any{"updates": []any{
		map[string]any{"op": "set", "id": 0, "attr": "TEMP", "value": 5.0},
	}})
	do(t, ts, "POST", "/api/monitor/readings/updates", string(body), http.StatusOK)
	row, _ := tab.Get(0)
	if row[1].Kind() != types.KindFloat || row[1].Float() != 5.0 {
		t.Fatalf("TEMP = %v (kind %v), want Float 5.0", row[1], row[1].Kind())
	}

	// Row insert honors the declared types as well.
	do(t, ts, "POST", "/api/tables/readings/rows", `{"row":[2, 7]}`, http.StatusOK)
	row, _ = tab.Get(1)
	if row[0].Kind() != types.KindInt || row[1].Kind() != types.KindFloat {
		t.Fatalf("inserted kinds = %v, %v; want Int, Float", row[0].Kind(), row[1].Kind())
	}
}

// TestValueForAttrFallbacks covers the untyped-column inference and the
// string-to-number coercions.
func TestValueForAttrFallbacks(t *testing.T) {
	sc := schema.NewTyped("r",
		schema.Attribute{Name: "U"}, // untyped
		schema.Attribute{Name: "F", Type: types.KindFloat},
		schema.Attribute{Name: "I", Type: types.KindInt},
		schema.Attribute{Name: "S", Type: types.KindString},
		schema.Attribute{Name: "B", Type: types.KindBool},
	)
	cases := []struct {
		pos  int
		in   any
		want types.Value
	}{
		{0, 5.0, types.NewInt(5)}, // untyped: inference
		{0, 5.5, types.NewFloat(5.5)},
		{1, 5.0, types.NewFloat(5.0)},
		{1, "2.5", types.NewFloat(2.5)},
		{2, 7.0, types.NewInt(7)},
		{2, 7.5, types.NewFloat(7.5)}, // non-integral for INT: keep the value
		{2, "7", types.NewInt(7)},
		{3, "x", types.NewString("x")},
		{4, true, types.NewBool(true)},
		{1, nil, types.Null},
	}
	for _, c := range cases {
		got := valueForAttr(sc, c.pos, c.in)
		if got.Kind() != c.want.Kind() || !got.Equal(c.want) {
			t.Errorf("valueForAttr(pos %d, %v) = %v (kind %v), want %v", c.pos, c.in, got, got.Kind(), c.want)
		}
	}
}

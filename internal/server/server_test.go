package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"semandaq/internal/core"
)

const customersCSV = `NAME,CNT,CITY,ZIP,STR,CC,AC
Mike,UK,Edinburgh,EH2 4SD,Mayfield,44,131
Rick,UK,Edinburgh,EH2 4SD,Mayfield,44,131
Nora,UK,Edinburgh,EH2 4SD,Mayfeild,44,131
Joe,US,New York,01202,Mtn Ave,44,908
Ben,US,Chicago,60601,Wacker,1,312
`

const cfdText = `phi2@ customer: [CNT=UK, ZIP=_] -> [STR=_]
phi4@ customer: [CC=44] -> [CNT=UK]`

// testServer spins up a server with the customer data and CFDs loaded.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(core.New()).Handler())
	t.Cleanup(ts.Close)
	do(t, ts, "POST", "/api/tables/customer", customersCSV, http.StatusOK)
	body, _ := json.Marshal(map[string]string{"text": cfdText})
	do(t, ts, "POST", "/api/cfds/customer", string(body), http.StatusOK)
	return ts
}

// do performs a request and decodes the JSON response.
func do(t *testing.T, ts *httptest.Server, method, path, body string, wantStatus int) map[string]any {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decode: %v", method, path, err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d, want %d (body %v)", method, path, resp.StatusCode, wantStatus, out)
	}
	return out
}

func TestLoadAndListTables(t *testing.T) {
	ts := testServer(t)
	out := do(t, ts, "GET", "/api/tables", "", http.StatusOK)
	tables := out["tables"].([]any)
	if len(tables) != 1 || tables[0] != "customer" {
		t.Errorf("tables = %v", tables)
	}
	out = do(t, ts, "GET", "/api/tables/customer?limit=2&offset=1", "", http.StatusOK)
	if out["tuples"].(float64) != 5 {
		t.Errorf("tuples = %v", out["tuples"])
	}
	rows := out["rows"].([]any)
	if len(rows) != 2 {
		t.Errorf("rows = %v", rows)
	}
	first := rows[0].(map[string]any)
	if first["id"].(float64) != 1 {
		t.Errorf("offset ignored: %v", first)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	ts := httptest.NewServer(New(core.New()).Handler())
	defer ts.Close()
	do(t, ts, "POST", "/api/tables/x", "", http.StatusBadRequest)
	do(t, ts, "GET", "/api/tables/missing", "", http.StatusNotFound)
}

func TestRegisterAndListCFDs(t *testing.T) {
	ts := testServer(t)
	out := do(t, ts, "GET", "/api/cfds/customer", "", http.StatusOK)
	cfds := out["cfds"].([]any)
	if len(cfds) != 2 {
		t.Fatalf("cfds = %v", cfds)
	}
	first := cfds[0].(map[string]any)
	if first["id"] != "phi2" {
		t.Errorf("first = %v", first)
	}
	// Unsatisfiable registration is rejected.
	bad, _ := json.Marshal(map[string]string{"text": `
customer: [NAME=_] -> [CNT=UK]
customer: [NAME=_] -> [CNT=US]`})
	out = do(t, ts, "POST", "/api/cfds/customer", string(bad), http.StatusBadRequest)
	if !strings.Contains(out["error"].(string), "unsatisfiable") {
		t.Errorf("error = %v", out["error"])
	}
	// Malformed JSON body.
	do(t, ts, "POST", "/api/cfds/customer", "{broken", http.StatusBadRequest)
}

func TestConsistencyEndpoint(t *testing.T) {
	ts := testServer(t)
	out := do(t, ts, "GET", "/api/consistency/customer", "", http.StatusOK)
	if out["satisfiable"] != true {
		t.Errorf("out = %v", out)
	}
}

func TestDetectEndpoint(t *testing.T) {
	ts := testServer(t)
	for _, engine := range []string{"", "?engine=native", "?engine=parallel", "?engine=parallel&workers=2"} {
		out := do(t, ts, "POST", "/api/detect/customer"+engine, "", http.StatusOK)
		if out["dirty"].(float64) != 4 {
			t.Errorf("engine %q dirty = %v", engine, out["dirty"])
		}
		per := out["perCFD"].(map[string]any)
		if len(per) != 2 {
			t.Errorf("perCFD = %v", per)
		}
	}
	out := do(t, ts, "GET", "/api/detect/customer/sql", "", http.StatusOK)
	stmts := out["sql"].([]any)
	if len(stmts) == 0 {
		t.Error("no SQL")
	}
	do(t, ts, "POST", "/api/detect/nope", "", http.StatusBadRequest)
	do(t, ts, "POST", "/api/detect/customer?engine=warp", "", http.StatusBadRequest)
	do(t, ts, "POST", "/api/detect/customer?engine=parallel&workers=x", "", http.StatusBadRequest)
}

func TestAuditEndpoint(t *testing.T) {
	ts := testServer(t)
	out := do(t, ts, "GET", "/api/audit/customer", "", http.StatusOK)
	if out["dirty"].(float64) != 2 { // Nora + Joe
		t.Errorf("dirty = %v", out["dirty"])
	}
	attrs := out["attrs"].([]any)
	if len(attrs) != 7 {
		t.Errorf("attrs = %d", len(attrs))
	}
	if !strings.Contains(out["text"].(string), "Data quality report") {
		t.Error("text render missing")
	}
}

func TestExploreEndpoints(t *testing.T) {
	ts := testServer(t)
	out := do(t, ts, "GET", "/api/explore/customer/cfds", "", http.StatusOK)
	if len(out["cfds"].([]any)) != 2 {
		t.Errorf("cfds = %v", out)
	}
	out = do(t, ts, "GET", "/api/explore/customer/patterns?cfd=phi2", "", http.StatusOK)
	pats := out["patterns"].([]any)
	if len(pats) != 1 {
		t.Fatalf("patterns = %v", pats)
	}
	out = do(t, ts, "GET", "/api/explore/customer/lhs?cfd=phi2&pattern=0", "", http.StatusOK)
	groups := out["groups"].([]any)
	if len(groups) != 1 { // only the EH2 4SD group
		t.Fatalf("groups = %v", groups)
	}
	g := groups[0].(map[string]any)
	if g["rhsValues"].(float64) != 2 {
		t.Errorf("group = %v", g)
	}
	out = do(t, ts, "GET", "/api/explore/customer/map", "", http.StatusOK)
	if len(out["map"].([]any)) != 5 {
		t.Errorf("map = %v", out["map"])
	}
	out = do(t, ts, "GET", "/api/explore/customer/tuple/0", "", http.StatusOK)
	rel := out["relevant"].([]any)
	if len(rel) != 2 {
		t.Errorf("relevant = %v", rel)
	}
	do(t, ts, "GET", "/api/explore/customer/tuple/abc", "", http.StatusBadRequest)
	do(t, ts, "GET", "/api/explore/customer/tuple/999", "", http.StatusNotFound)
	do(t, ts, "GET", "/api/explore/customer/patterns?cfd=nope", "", http.StatusBadRequest)
}

func TestRepairReviewApplyFlow(t *testing.T) {
	ts := testServer(t)
	// Apply without a pending repair: conflict.
	do(t, ts, "POST", "/api/repair/customer/apply", "", http.StatusConflict)
	out := do(t, ts, "POST", "/api/repair/customer", "", http.StatusOK)
	if out["converged"] != true {
		t.Fatalf("repair = %v", out)
	}
	mods := out["modifications"].([]any)
	if len(mods) == 0 {
		t.Fatal("no modifications")
	}
	m := mods[0].(map[string]any)
	for _, k := range []string{"tuple", "attr", "old", "new", "cost", "cfd", "reason"} {
		if _, ok := m[k]; !ok {
			t.Errorf("modification missing %q: %v", k, m)
		}
	}
	out = do(t, ts, "POST", "/api/repair/customer/apply", "", http.StatusOK)
	if out["applied"].(float64) == 0 {
		t.Errorf("apply = %v", out)
	}
	// Detection is now clean.
	out = do(t, ts, "POST", "/api/detect/customer", "", http.StatusOK)
	if out["dirty"].(float64) != 0 {
		t.Errorf("dirty after apply = %v", out["dirty"])
	}
	// Second apply: pending consumed.
	do(t, ts, "POST", "/api/repair/customer/apply", "", http.StatusConflict)
}

func TestMonitorFlow(t *testing.T) {
	ts := testServer(t)
	// Repair + apply so the table is clean, then monitor cleansed.
	do(t, ts, "POST", "/api/repair/customer", "", http.StatusOK)
	do(t, ts, "POST", "/api/repair/customer/apply", "", http.StatusOK)
	out := do(t, ts, "POST", "/api/monitor/customer?cleansed=true", "", http.StatusOK)
	if out["dirty"].(float64) != 0 {
		t.Fatalf("monitor start = %v", out)
	}
	// Updates for a table that does not exist: not found.
	do(t, ts, "POST", "/api/monitor/other/updates", `{"updates":[]}`, http.StatusNotFound)
	// Updates for an existing table without a monitor: conflict.
	do(t, ts, "POST", "/api/tables/other", "A,B\nx,y\n", http.StatusOK)
	do(t, ts, "POST", "/api/monitor/other/updates", `{"updates":[]}`, http.StatusConflict)

	updates := map[string]any{"updates": []any{
		map[string]any{"op": "insert",
			"row": []any{"Zed", "US", "Edinburgh", "EH2 4SD", "Wrongstreet", 44, 131}},
	}}
	body, _ := json.Marshal(updates)
	out = do(t, ts, "POST", "/api/monitor/customer/updates", string(body), http.StatusOK)
	if out["dirty"].(float64) != 0 {
		t.Errorf("monitor left dirt: %v", out)
	}
	if len(out["repairs"].([]any)) < 2 {
		t.Errorf("repairs = %v", out["repairs"])
	}
	// set + delete round trip.
	id := int64(out["inserted"].([]any)[0].(float64))
	body, _ = json.Marshal(map[string]any{"updates": []any{
		map[string]any{"op": "set", "id": id, "attr": "NAME", "value": "Zed2"},
		map[string]any{"op": "delete", "id": id},
	}})
	out = do(t, ts, "POST", "/api/monitor/customer/updates", string(body), http.StatusOK)
	if out["dirty"].(float64) != 0 {
		t.Errorf("after delete = %v", out)
	}
	// Unknown op.
	body, _ = json.Marshal(map[string]any{"updates": []any{map[string]any{"op": "warp"}}})
	do(t, ts, "POST", "/api/monitor/customer/updates", string(body), http.StatusBadRequest)
}

func TestDiscoverEndpoint(t *testing.T) {
	ts := testServer(t)
	out := do(t, ts, "POST", "/api/discover/customer", `{"minSupport":2,"maxLHS":1}`, http.StatusOK)
	disc := out["discovered"].([]any)
	if len(disc) == 0 {
		t.Fatal("nothing discovered")
	}
	// The table is dirty (Joe has CC=44 with CNT=US), so [CC=44]->[CNT=UK]
	// must NOT be mined; [CNT=UK]->[CC=44] holds on all 3 UK rows.
	found, foundBad := false, false
	for _, d := range disc {
		text := d.(map[string]any)["text"].(string)
		if strings.Contains(text, "[CNT=UK] -> [CC=44]") {
			found = true
		}
		if strings.Contains(text, "[CC=44] -> [CNT=UK]") {
			foundBad = true
		}
	}
	if !found {
		t.Errorf("expected CNT=UK -> CC=44 among %v", disc)
	}
	if foundBad {
		t.Error("mined a rule the dirty data violates")
	}
	// The payload carries the snapshot version, the tuple count and the
	// per-candidate evidence.
	if v, ok := out["version"].(float64); !ok || v < 1 {
		t.Errorf("version = %v", out["version"])
	}
	if n := out["tuples"].(float64); n != 5 {
		t.Errorf("tuples = %v", n)
	}
	cands := out["candidates"].([]any)
	if len(cands) == 0 {
		t.Fatal("no candidates in payload")
	}
	for _, c := range cands {
		m := c.(map[string]any)
		if m["support"].(float64) <= 0 || m["confidence"].(float64) != 1.0 ||
			m["kind"].(string) == "" || m["text"].(string) == "" {
			t.Errorf("bad candidate %v", m)
		}
	}
	do(t, ts, "POST", "/api/discover/none", "{}", http.StatusBadRequest)
}

// TestDiscoverEndpointCancellation pins the context propagation fix: a
// request whose context is already dead must not run the miner, and the
// handler maps the cancellation to 499 instead of 400.
func TestDiscoverEndpointCancellation(t *testing.T) {
	s := core.New()
	if _, err := s.LoadCSV("customer", strings.NewReader(customersCSV)); err != nil {
		t.Fatal(err)
	}
	sv := New(s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/api/discover/customer", strings.NewReader("{}")).WithContext(ctx)
	rec := httptest.NewRecorder()
	sv.Handler().ServeHTTP(rec, req)
	if rec.Code != 499 {
		t.Errorf("pre-cancelled discover returned %d (%s), want 499", rec.Code, rec.Body)
	}
	var out map[string]any
	if err := json.NewDecoder(rec.Body).Decode(&out); err != nil || out["error"] == "" {
		t.Errorf("cancellation error payload = %v (%v)", out, err)
	}
}

func TestJSONValueRoundTrip(t *testing.T) {
	// Values survive JSON encoding through an insert+read cycle.
	ts := testServer(t)
	do(t, ts, "POST", "/api/monitor/customer", "", http.StatusOK)
	body, _ := json.Marshal(map[string]any{"updates": []any{
		map[string]any{"op": "insert",
			"row": []any{"N", "FR", "Paris", "75001", "Rivoli", 33, 1.5}},
	}})
	out := do(t, ts, "POST", "/api/monitor/customer/updates", string(body), http.StatusOK)
	id := int64(out["inserted"].([]any)[0].(float64))
	tout := do(t, ts, "GET", fmt.Sprintf("/api/tables/customer?offset=5&limit=10"), "", http.StatusOK)
	rows := tout["rows"].([]any)
	var row []any
	for _, r := range rows {
		m := r.(map[string]any)
		if int64(m["id"].(float64)) == id {
			row = m["row"].([]any)
		}
	}
	if row == nil {
		t.Fatal("inserted row not found")
	}
	if row[5].(float64) != 33 || row[6].(float64) != 1.5 {
		t.Errorf("row = %v", row)
	}
}

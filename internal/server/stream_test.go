package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"
	"time"

	"semandaq/internal/core"
	"semandaq/internal/datagen"
)

// streamLines performs a streaming detect request and returns the decoded
// violation lines plus the terminal done line.
func streamLines(t *testing.T, url string) ([]map[string]any, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var viols []map[string]any
	var done map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if e, ok := line["error"]; ok {
			t.Fatalf("stream error line: %v", e)
		}
		if d, ok := line["done"]; ok && d == true {
			done = line
			continue
		}
		viols = append(viols, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if done == nil {
		t.Fatal("stream ended without a done line")
	}
	return viols, done
}

// TestDetectStreamNDJSON covers the happy path on the small fixture: the
// streamed violation lines agree with the blocking endpoint's totals and
// the done line carries the count and duration.
func TestDetectStreamNDJSON(t *testing.T) {
	ts := testServer(t)
	blocking := do(t, ts, "POST", "/api/detect/customer?engine=parallel", "", http.StatusOK)
	if _, ok := blocking["durationMs"]; !ok {
		t.Error("blocking payload missing durationMs")
	}
	viols, done := streamLines(t, ts.URL+"/api/detect/customer?stream=1")
	if got, want := float64(len(viols)), blocking["violations"].(float64); got != want {
		t.Errorf("streamed %v violations, blocking reported %v", got, want)
	}
	if done["violations"].(float64) != float64(len(viols)) {
		t.Errorf("done line says %v, streamed %d", done["violations"], len(viols))
	}
	if _, ok := done["durationMs"]; !ok {
		t.Error("done line missing durationMs")
	}
}

// TestDetectStreamBadRequests: streaming requests that cannot start still
// fail with a real HTTP status instead of a 200 NDJSON error line.
func TestDetectStreamBadRequests(t *testing.T) {
	ts := testServer(t)
	for _, path := range []string{
		"/api/detect/nope?stream=1",
		"/api/detect/customer?stream=1&cfds=ghost",
		"/api/detect/customer?stream=1&engine=warp",
		"/api/detect/customer?stream=1&workers=-1",
	} {
		out := do(t, ts, "GET", path, "", http.StatusBadRequest)
		if out["error"] == "" {
			t.Errorf("%s: no error payload", path)
		}
	}
}

// TestDetectGetRoute keeps the blocking GET route equivalent to POST.
func TestDetectGetRoute(t *testing.T) {
	ts := testServer(t)
	post := do(t, ts, "POST", "/api/detect/customer", "", http.StatusOK)
	get := do(t, ts, "GET", "/api/detect/customer", "", http.StatusOK)
	if post["violations"] != get["violations"] || post["dirty"] != get["dirty"] {
		t.Errorf("GET %v != POST %v", get, post)
	}
}

// TestDetectStreamScopedAndLimited exercises the cfds/limit parameters on
// the streaming endpoint.
func TestDetectStreamScopedAndLimited(t *testing.T) {
	ts := testServer(t)
	viols, _ := streamLines(t, ts.URL+"/api/detect/customer?stream=1&cfds=phi4")
	for _, v := range viols {
		if v["cfd"] != "phi4" {
			t.Errorf("scoped stream leaked violation for %v", v["cfd"])
		}
	}
	limited, done := streamLines(t, ts.URL+"/api/detect/customer?stream=1&limit=2")
	if len(limited) != 2 || done["violations"].(float64) != 2 {
		t.Errorf("limit=2 streamed %d violations (done %v)", len(limited), done["violations"])
	}
}

// canonicalize marshals violation payloads into a sorted string set for
// order-independent comparison.
func canonicalize(t *testing.T, ms []map[string]any) []string {
	t.Helper()
	out := make([]string, 0, len(ms))
	for _, m := range ms {
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(b))
	}
	sort.Strings(out)
	return out
}

// TestDetectStreamMillionTuples is the acceptance scenario: on a 1M-tuple
// table, `curl -N .../detect?stream=1` sees the first NDJSON violation
// while the scan is still running, and the streamed violation set is
// byte-identical to the blocking report's.
func TestDetectStreamMillionTuples(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-tuple workload; skipped under -short")
	}
	// Noise is deliberately tiny: the scan cost (and the time to the
	// first streamed line) is set by the 1M-tuple table, while the noise
	// rate only scales the number of NDJSON lines written afterwards.
	ds := datagen.Generate(datagen.Config{Tuples: 1_000_000, Seed: 13, NoiseRate: 0.0005})
	sys := core.New()
	sys.RegisterTable(ds.Dirty)
	if err := sys.RegisterCFDs("customer", datagen.StandardCFDs()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(sys).Handler())
	defer ts.Close()

	start := time.Now()
	resp, err := http.Get(ts.URL + "/api/detect/customer?stream=1&workers=4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var firstViolation time.Duration
	var streamed []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if d, ok := line["done"]; ok && d == true {
			break
		}
		if firstViolation == 0 {
			firstViolation = time.Since(start)
		}
		streamed = append(streamed, line)
	}
	total := time.Since(start)
	if len(streamed) == 0 {
		t.Fatal("no violations streamed")
	}
	// The first line must arrive while the scan is still running — far
	// from the end of the stream. Half the total duration is a very loose
	// bound; in practice the first violation lands within milliseconds
	// while the full pass takes orders of magnitude longer.
	if firstViolation > total/2 {
		t.Errorf("first violation after %v of %v total", firstViolation, total)
	}

	// Byte-identity with the blocking report, via the shared wire shaping.
	rep, err := sys.Detect(context.Background(), "customer", core.WithEngine(core.ParallelDetection))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]map[string]any, 0, len(rep.Violations))
	for _, v := range rep.Violations {
		want = append(want, violationJSON(v))
	}
	gotSet := canonicalize(t, streamed)
	wantSet := canonicalize(t, want)
	if !reflect.DeepEqual(gotSet, wantSet) {
		t.Errorf("streamed set (%d) differs from blocking report (%d)", len(gotSet), len(wantSet))
	}
}

package datagen

import (
	"context"
	"testing"

	"semandaq/internal/detect"
	"semandaq/internal/relstore"
	"semandaq/internal/repair"
)

func TestCleanDataSatisfiesStandardCFDs(t *testing.T) {
	ds := Generate(Config{Tuples: 2000, Seed: 1})
	rep, err := detect.NativeDetector{}.Detect(context.Background(), ds.Clean, StandardCFDs())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("clean data has %d violations; first: %+v",
			len(rep.Violations), rep.Violations[0])
	}
}

// TestCleanDataSatisfiesCFDsAtLargeZipPools is a regression test for zip
// collisions across cities: with ZipsPerCity > 1000 the old US zip scheme
// overlapped neighbouring cities' ranges, silently breaking phi1 on
// "clean" data (and wrecking the R2 experiment at 80k tuples).
func TestCleanDataSatisfiesCFDsAtLargeZipPools(t *testing.T) {
	ds := Generate(Config{Tuples: 6000, Seed: 2, ZipsPerCity: 1500})
	rep, err := detect.NativeDetector{}.Detect(context.Background(), ds.Clean, StandardCFDs())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("clean data with a large zip pool has %d violations; first: %+v",
			len(rep.Violations), rep.Violations[0])
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Config{Tuples: 500, Seed: 42, NoiseRate: 0.05})
	b := Generate(Config{Tuples: 500, Seed: 42, NoiseRate: 0.05})
	_, ra := a.Dirty.Rows()
	_, rb := b.Dirty.Rows()
	for i := range ra {
		if !ra[i].Equal(rb[i]) {
			t.Fatalf("row %d differs: %v vs %v", i, ra[i], rb[i])
		}
	}
	if len(a.Corruptions) != len(b.Corruptions) {
		t.Error("corruption lists differ")
	}
	c := Generate(Config{Tuples: 500, Seed: 43, NoiseRate: 0.05})
	_, rc := c.Dirty.Rows()
	same := true
	for i := range ra {
		if !ra[i].Equal(rc[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestNoiseRateHonored(t *testing.T) {
	ds := Generate(Config{Tuples: 1000, Seed: 7, NoiseRate: 0.05})
	if got := len(ds.Corruptions); got != 50 {
		t.Errorf("corruptions = %d, want 50", got)
	}
	// Every corruption actually changed the cell.
	sc := ds.Dirty.Schema()
	for _, c := range ds.Corruptions {
		row, ok := ds.Dirty.Get(c.TupleID)
		if !ok {
			t.Fatalf("corrupted tuple %d missing", c.TupleID)
		}
		pos := sc.MustPos(c.Attr)
		if !row[pos].Equal(c.Dirty) {
			t.Errorf("tuple %d attr %s = %v, want %v", c.TupleID, c.Attr, row[pos], c.Dirty)
		}
		if c.Clean.Equal(c.Dirty) {
			t.Errorf("corruption %+v is a no-op", c)
		}
		clean, _ := ds.Clean.Get(c.TupleID)
		if !clean[pos].Equal(c.Clean) {
			t.Errorf("clean value mismatch for %+v", c)
		}
	}
}

func TestDirtyDataHasViolations(t *testing.T) {
	ds := Generate(Config{Tuples: 1000, Seed: 7, NoiseRate: 0.05})
	rep, err := detect.NativeDetector{}.Detect(context.Background(), ds.Dirty, StandardCFDs())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Vio) == 0 {
		t.Fatal("noise produced no violations")
	}
	// Most corruptions should be detectable (some typo streets may land in
	// a singleton zip group and stay invisible — that is expected).
	if len(rep.Vio) < len(ds.Corruptions)/4 {
		t.Errorf("only %d dirty tuples from %d corruptions", len(rep.Vio), len(ds.Corruptions))
	}
}

func TestZeroNoise(t *testing.T) {
	ds := Generate(Config{Tuples: 100, Seed: 1, NoiseRate: 0})
	if len(ds.Corruptions) != 0 {
		t.Errorf("corruptions = %d", len(ds.Corruptions))
	}
	_, cleanRows := ds.Clean.Rows()
	_, dirtyRows := ds.Dirty.Rows()
	for i := range cleanRows {
		if !cleanRows[i].Equal(dirtyRows[i]) {
			t.Fatal("zero noise should leave data identical")
		}
	}
}

func TestDefaults(t *testing.T) {
	ds := Generate(Config{})
	if ds.Clean.Len() != 1000 {
		t.Errorf("default tuples = %d", ds.Clean.Len())
	}
}

func TestRepairScoring(t *testing.T) {
	ds := Generate(Config{Tuples: 1500, Seed: 11, NoiseRate: 0.04})
	res, err := repair.NewRepairer().Repair(context.Background(), ds.Dirty, StandardCFDs())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("repair did not converge: %d left", res.Remaining)
	}
	score := ds.ScoreRepairCells(res.Repaired, res.ModifiedCells())
	if score.Changed == 0 {
		t.Fatal("repair changed nothing")
	}
	// Repair quality should be far better than chance: the VLDB'07 paper
	// reports high accuracy at these noise rates.
	if p := score.Precision(); p < 0.5 {
		t.Errorf("precision = %.2f", p)
	}
	if r := score.Recall(); r < 0.3 {
		t.Errorf("recall = %.2f", r)
	}
	if score.F1() <= 0 {
		t.Error("F1 = 0")
	}
}

func TestScoreEdgeCases(t *testing.T) {
	var s Score
	if s.Precision() != 1 || s.Recall() != 1 {
		t.Error("empty score should be perfect")
	}
	if s.F1() != 1 {
		t.Errorf("F1 = %v", s.F1())
	}
	s = Score{Changed: 10, Correct: 0, Corrupted: 10, Restored: 0}
	if s.F1() != 0 {
		t.Errorf("F1 = %v", s.F1())
	}
}

func TestTypoAlwaysChanges(t *testing.T) {
	ds := Generate(Config{Tuples: 200, Seed: 3, NoiseRate: 0.5})
	for _, c := range ds.Corruptions {
		if c.Kind == "typo-street" && c.Clean.Equal(c.Dirty) {
			t.Errorf("typo no-op: %+v", c)
		}
	}
}

func TestGroupSizesControllable(t *testing.T) {
	small := Generate(Config{Tuples: 1000, Seed: 5, ZipsPerCity: 2})
	large := Generate(Config{Tuples: 1000, Seed: 5, ZipsPerCity: 100})
	count := func(tab *relstore.Table) int {
		ix, err := tab.EnsureIndex("CNT", "ZIP")
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		ix.Buckets(func(string, []relstore.TupleID) bool { n++; return true })
		return n
	}
	if count(small.Clean) >= count(large.Clean) {
		t.Error("more zips should mean more groups")
	}
}

// Package datagen generates the synthetic customer data every experiment in
// this reproduction runs on. The paper's running example is a customer
// relation customer(NAME, CNT, CITY, ZIP, STR, CC, AC); its companion
// papers evaluate detection and repair on data dirtied at a controlled
// noise rate. This generator produces a clean instance that satisfies the
// standard CFD set by construction, then injects seeded, typed errors and
// remembers every corrupted cell so repair quality (precision/recall) can
// be measured against ground truth.
package datagen

import (
	"fmt"
	"math/rand"

	"semandaq/internal/cfd"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// Config controls generation.
type Config struct {
	// Tuples is the number of customer rows.
	Tuples int
	// Seed makes the dataset reproducible.
	Seed int64
	// NoiseRate is the fraction of tuples that receive one corrupted cell.
	NoiseRate float64
	// ZipsPerCity bounds the zip pool; smaller pools make larger FD groups.
	// Default: Tuples/50, at least 2.
	ZipsPerCity int
}

// Corruption records one injected error: ground truth for repair scoring.
type Corruption struct {
	TupleID relstore.TupleID
	Attr    string
	Clean   types.Value
	Dirty   types.Value
	Kind    string // typo-street, wrong-country, wrong-city, wrong-ac
}

// Dataset is a generated workload.
type Dataset struct {
	// Clean satisfies StandardCFDs() by construction.
	Clean *relstore.Table
	// Dirty is Clean plus the injected corruptions.
	Dirty *relstore.Table
	// Corruptions lists every injected error.
	Corruptions []Corruption
}

// city is one entry of the world model: every zip maps to exactly one
// street and every city has one area code, so the clean data satisfies the
// CFDs by construction.
type city struct {
	name string
	ac   int64
	cnt  string
	cc   int64
}

var worldCities = []city{
	{"Edinburgh", 131, "UK", 44},
	{"London", 20, "UK", 44},
	{"Glasgow", 141, "UK", 44},
	{"New York", 212, "US", 1},
	{"Chicago", 312, "US", 1},
	{"Madison", 608, "US", 1},
}

var streetNames = []string{
	"Mayfield Rd", "Crichton St", "Lauriston Pl", "Princes St", "High St",
	"Main St", "Oak Ave", "Mtn Ave", "Elm St", "Park Lane", "Queen St",
	"King St", "Station Rd", "Church Rd", "Mill Lane", "Bridge St",
}

// Schema returns the paper's customer relation schema.
func Schema() *schema.Relation {
	return schema.New("customer", "NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC")
}

// StandardCFDs returns the CFD set of the paper's running example:
//
//	phi1: [CNT, ZIP]     -> [CITY]      (classical FD)
//	phi2: [CNT=UK, ZIP]  -> [STR]       (FD conditioned on the UK)
//	phi3: [CC=44]        -> [CNT=UK]    (constant binding)
//	      [CC=1]         -> [CNT=US]
//	phi4: [CNT, AC]      -> [CITY]      (area code determines city)
func StandardCFDs() []*cfd.CFD {
	cfds, err := cfd.ParseSet(`
phi1@ customer: [CNT=_, ZIP=_] -> [CITY=_]
phi2@ customer: [CNT=UK, ZIP=_] -> [STR=_]
phi3@ customer: [CC=44] -> [CNT=UK]
customer: [CC=1] -> [CNT=US]
phi4@ customer: [CNT=_, AC=_] -> [CITY=_]
`)
	if err != nil {
		panic(err) // static text; cannot fail
	}
	return cfds
}

// Generate builds a dataset per the config.
func Generate(cfg Config) *Dataset {
	if cfg.Tuples <= 0 {
		cfg.Tuples = 1000
	}
	if cfg.ZipsPerCity <= 0 {
		cfg.ZipsPerCity = cfg.Tuples / 50
		if cfg.ZipsPerCity < 2 {
			cfg.ZipsPerCity = 2
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// World model: zips per city, each with its one true street.
	type zipEntry struct {
		zip    string
		street string
	}
	zipsOf := make([][]zipEntry, len(worldCities))
	for ci, c := range worldCities {
		for z := 0; z < cfg.ZipsPerCity; z++ {
			var zip string
			if c.cnt == "UK" {
				zip = fmt.Sprintf("%c%c%d %dAB", c.name[0], c.name[1], z/10, z%10)
			} else {
				// City index in the high digits so zip ranges can never
				// collide across cities, whatever ZipsPerCity is.
				zip = fmt.Sprintf("%06d", (ci+1)*100000+z)
			}
			street := fmt.Sprintf("%d %s", 1+rng.Intn(200), streetNames[rng.Intn(len(streetNames))])
			zipsOf[ci] = append(zipsOf[ci], zipEntry{zip: zip, street: street})
		}
	}

	clean := relstore.NewTable(Schema())
	for i := 0; i < cfg.Tuples; i++ {
		ci := rng.Intn(len(worldCities))
		c := worldCities[ci]
		ze := zipsOf[ci][rng.Intn(len(zipsOf[ci]))]
		row := relstore.Tuple{
			// Seed-qualify names so datasets generated with different
			// seeds never share a customer: name-keyed FDs discovered
			// from one dataset must not spuriously link another.
			types.NewString(fmt.Sprintf("cust%d_%06d", cfg.Seed, i)),
			types.NewString(c.cnt),
			types.NewString(c.name),
			types.NewString(ze.zip),
			types.NewString(ze.street),
			types.NewInt(c.cc),
			types.NewInt(c.ac),
		}
		clean.MustInsert(row)
	}

	dirty := clean.Clone()
	ds := &Dataset{Clean: clean, Dirty: dirty}
	sc := dirty.Schema()
	posCNT := sc.MustPos("CNT")
	posCITY := sc.MustPos("CITY")
	posSTR := sc.MustPos("STR")
	posAC := sc.MustPos("AC")

	if cfg.NoiseRate <= 0 {
		return ds
	}
	n := int(float64(cfg.Tuples) * cfg.NoiseRate)
	ids := dirty.Snapshot().IDs()
	perm := rng.Perm(len(ids))
	for k := 0; k < n && k < len(ids); k++ {
		id := ids[perm[k]]
		row, _ := dirty.Get(id)
		var corr Corruption
		switch rng.Intn(4) {
		case 0: // typo in the street: violates phi2 in UK zips
			old := row[posSTR].Str()
			corr = Corruption{
				TupleID: id, Attr: "STR", Clean: row[posSTR],
				Dirty: types.NewString(typo(old, rng)), Kind: "typo-street",
			}
			dirty.SetCell(id, posSTR, corr.Dirty)
		case 1: // flip the country, keep the code: violates phi3
			old := row[posCNT].Str()
			flip := "UK"
			if old == "UK" {
				flip = "US"
			}
			corr = Corruption{
				TupleID: id, Attr: "CNT", Clean: row[posCNT],
				Dirty: types.NewString(flip), Kind: "wrong-country",
			}
			dirty.SetCell(id, posCNT, corr.Dirty)
		case 2: // wrong city for the zip: violates phi1 (and maybe phi4)
			old := row[posCITY].Str()
			other := worldCities[rng.Intn(len(worldCities))].name
			for other == old {
				other = worldCities[rng.Intn(len(worldCities))].name
			}
			corr = Corruption{
				TupleID: id, Attr: "CITY", Clean: row[posCITY],
				Dirty: types.NewString(other), Kind: "wrong-city",
			}
			dirty.SetCell(id, posCITY, corr.Dirty)
		default: // wrong area code: violates phi4
			old := row[posAC].Int()
			other := worldCities[rng.Intn(len(worldCities))].ac
			for other == old {
				other = worldCities[rng.Intn(len(worldCities))].ac
			}
			corr = Corruption{
				TupleID: id, Attr: "AC", Clean: row[posAC],
				Dirty: types.NewInt(other), Kind: "wrong-ac",
			}
			dirty.SetCell(id, posAC, corr.Dirty)
		}
		ds.Corruptions = append(ds.Corruptions, corr)
	}
	return ds
}

// typo swaps two adjacent characters (or appends one when too short),
// modelling the keyboard errors the repair distance metric targets.
func typo(s string, rng *rand.Rand) string {
	if len(s) < 2 {
		return s + "x"
	}
	i := rng.Intn(len(s) - 1)
	b := []byte(s)
	b[i], b[i+1] = b[i+1], b[i]
	out := string(b)
	if out == s { // swapped identical characters; force a change
		return s + "x"
	}
	return out
}

// Score measures a repair against the ground truth: precision is the
// fraction of changed cells whose new value equals the clean value;
// recall is the fraction of corrupted cells restored to the clean value.
type Score struct {
	Changed   int
	Correct   int
	Corrupted int
	Restored  int
}

// Precision returns Correct/Changed (1 when nothing changed).
func (s Score) Precision() float64 {
	if s.Changed == 0 {
		return 1
	}
	return float64(s.Correct) / float64(s.Changed)
}

// Recall returns Restored/Corrupted (1 when nothing was corrupted).
func (s Score) Recall() float64 {
	if s.Corrupted == 0 {
		return 1
	}
	return float64(s.Restored) / float64(s.Corrupted)
}

// F1 returns the harmonic mean of precision and recall.
func (s Score) F1() float64 {
	p, r := s.Precision(), s.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// ScoreRepairCells scores a repair: changed maps "id/attr" keys to true for
// every modified cell (see repair.Result.ModifiedCells).
func (ds *Dataset) ScoreRepairCells(repaired *relstore.Table, changed map[string]bool) Score {
	var s Score
	sc := repaired.Schema()
	s.Changed = len(changed)
	s.Corrupted = len(ds.Corruptions)
	// Correct: changed cell now equals the clean value.
	for key := range changed {
		var id relstore.TupleID
		var attr string
		if _, err := fmt.Sscanf(key, "%d/%s", &id, &attr); err != nil {
			continue
		}
		pos, ok := sc.Pos(attr)
		if !ok {
			continue
		}
		got, ok1 := repaired.Get(id)
		want, ok2 := ds.Clean.Get(id)
		if ok1 && ok2 && got[pos].Equal(want[pos]) {
			s.Correct++
		}
	}
	for _, c := range ds.Corruptions {
		pos, ok := sc.Pos(c.Attr)
		if !ok {
			continue
		}
		got, ok1 := repaired.Get(c.TupleID)
		if ok1 && got[pos].Equal(c.Clean) {
			s.Restored++
		}
	}
	return s
}

// Package schema describes relation schemas: ordered attribute lists with
// optional type annotations. Schemas are shared by the store, the SQL
// engine and the CFD layer (CFDs are defined over a schema's attributes).
package schema

import (
	"fmt"
	"strings"

	"semandaq/internal/types"
)

// Attribute is one column of a relation.
type Attribute struct {
	Name string
	// Type is the declared kind; KindNull means untyped (any).
	Type types.Kind
}

// Relation is a named, ordered attribute list.
type Relation struct {
	Name  string
	Attrs []Attribute

	index map[string]int // lowercase attribute name -> position
}

// New builds a relation schema from attribute names, all untyped.
func New(name string, attrs ...string) *Relation {
	r := &Relation{Name: name}
	for _, a := range attrs {
		r.Attrs = append(r.Attrs, Attribute{Name: a})
	}
	r.reindex()
	return r
}

// NewTyped builds a relation schema from explicit attributes.
func NewTyped(name string, attrs ...Attribute) *Relation {
	r := &Relation{Name: name, Attrs: attrs}
	r.reindex()
	return r
}

func (r *Relation) reindex() {
	r.index = make(map[string]int, len(r.Attrs))
	for i, a := range r.Attrs {
		r.index[strings.ToLower(a.Name)] = i
	}
}

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.Attrs) }

// Pos returns the position of the named attribute (case-insensitive) and
// whether it exists.
func (r *Relation) Pos(attr string) (int, bool) {
	i, ok := r.index[strings.ToLower(attr)]
	return i, ok
}

// MustPos returns the position of attr or panics; used where the attribute
// set was validated up front.
func (r *Relation) MustPos(attr string) int {
	i, ok := r.Pos(attr)
	if !ok {
		panic(fmt.Sprintf("schema: relation %s has no attribute %q", r.Name, attr))
	}
	return i
}

// Has reports whether the relation has the named attribute.
func (r *Relation) Has(attr string) bool {
	_, ok := r.Pos(attr)
	return ok
}

// AttrNames returns the attribute names in order.
func (r *Relation) AttrNames() []string {
	names := make([]string, len(r.Attrs))
	for i, a := range r.Attrs {
		names[i] = a.Name
	}
	return names
}

// Positions resolves a list of attribute names to positions. It returns an
// error naming the first unknown attribute.
func (r *Relation) Positions(attrs []string) ([]int, error) {
	pos := make([]int, len(attrs))
	for i, a := range attrs {
		p, ok := r.Pos(a)
		if !ok {
			return nil, fmt.Errorf("schema: relation %s has no attribute %q", r.Name, a)
		}
		pos[i] = p
	}
	return pos, nil
}

// Clone returns a deep copy, optionally renamed.
func (r *Relation) Clone(name string) *Relation {
	if name == "" {
		name = r.Name
	}
	attrs := make([]Attribute, len(r.Attrs))
	copy(attrs, r.Attrs)
	return NewTyped(name, attrs...)
}

// String renders the schema as R(A, B, C).
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(r.Name)
	b.WriteByte('(')
	for i, a := range r.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
		if a.Type != types.KindNull {
			b.WriteByte(' ')
			b.WriteString(a.Type.String())
		}
	}
	b.WriteByte(')')
	return b.String()
}

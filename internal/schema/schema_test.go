package schema

import (
	"testing"

	"semandaq/internal/types"
)

func TestNewAndPositions(t *testing.T) {
	r := New("customer", "NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC")
	if r.Arity() != 7 {
		t.Fatalf("Arity = %d, want 7", r.Arity())
	}
	if p, ok := r.Pos("CITY"); !ok || p != 2 {
		t.Errorf("Pos(CITY) = %d,%v", p, ok)
	}
	// Case insensitive.
	if p, ok := r.Pos("city"); !ok || p != 2 {
		t.Errorf("Pos(city) = %d,%v", p, ok)
	}
	if _, ok := r.Pos("NOPE"); ok {
		t.Error("Pos(NOPE) should not exist")
	}
	if !r.Has("zip") || r.Has("missing") {
		t.Error("Has misbehaves")
	}
}

func TestPositionsBatch(t *testing.T) {
	r := New("r", "A", "B", "C")
	pos, err := r.Positions([]string{"C", "A"})
	if err != nil {
		t.Fatal(err)
	}
	if pos[0] != 2 || pos[1] != 0 {
		t.Errorf("Positions = %v", pos)
	}
	if _, err := r.Positions([]string{"A", "X"}); err == nil {
		t.Error("expected error for unknown attribute")
	}
}

func TestMustPosPanics(t *testing.T) {
	r := New("r", "A")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	r.MustPos("B")
}

func TestAttrNamesAndString(t *testing.T) {
	r := New("r", "A", "B")
	names := r.AttrNames()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Errorf("AttrNames = %v", names)
	}
	if s := r.String(); s != "r(A, B)" {
		t.Errorf("String = %q", s)
	}
	rt := NewTyped("t", Attribute{Name: "N", Type: types.KindInt})
	if s := rt.String(); s != "t(N INT)" {
		t.Errorf("typed String = %q", s)
	}
}

func TestClone(t *testing.T) {
	r := New("r", "A", "B")
	c := r.Clone("s")
	if c.Name != "s" || c.Arity() != 2 {
		t.Errorf("Clone = %v", c)
	}
	c.Attrs[0].Name = "Z"
	if r.Attrs[0].Name != "A" {
		t.Error("Clone should be deep")
	}
	same := r.Clone("")
	if same.Name != "r" {
		t.Errorf("Clone(\"\") name = %q", same.Name)
	}
}

package repair

import (
	"context"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/detect"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// TestTwoFDsTuggingOneCell reproduces the interaction that makes naive
// repair loop forever: two FDs share the RHS attribute CITY, and a tuple
// with a corrupted AC belongs to a zip-group that says "Edinburgh" and an
// area-code-group that says "London". The repair must not ping-pong; the
// correct fix is to repair the AC cell (break the losing membership).
func TestTwoFDsTuggingOneCell(t *testing.T) {
	tab := relstore.NewTable(schema.New("customer", "CNT", "CITY", "ZIP", "AC"))
	ins := func(cnt, city, zip string, ac int64) relstore.TupleID {
		return tab.MustInsert(relstore.Tuple{
			types.NewString(cnt), types.NewString(city),
			types.NewString(zip), types.NewInt(ac)})
	}
	// Edinburgh zip group EH2: three tuples, AC 131.
	ins("UK", "Edinburgh", "EH2", 131)
	ins("UK", "Edinburgh", "EH2", 131)
	// The victim: Edinburgh zip but corrupted AC = 20 (London's).
	victim := ins("UK", "Edinburgh", "EH2", 20)
	// London AC group: three tuples with AC 20.
	ins("UK", "London", "SW1", 20)
	ins("UK", "London", "SW1", 20)
	ins("UK", "London", "SW1", 20)

	cfds, err := cfd.ParseSet(`
zipcity@ customer: [CNT=_, ZIP=_] -> [CITY=_]
accity@  customer: [CNT=_, AC=_] -> [CITY=_]
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewRepairer().Repair(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %d remaining after %d passes", res.Remaining, res.Passes)
	}
	rep, err := detect.NativeDetector{}.Detect(context.Background(), res.Repaired, cfds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("repaired table still has %d violations", len(rep.Violations))
	}
	// The victim must keep Edinburgh (zip group is its stronger context)
	// and have its AC repaired to 131.
	sc := res.Repaired.Schema()
	row, _ := res.Repaired.Get(victim)
	if got := row[sc.MustPos("CITY")].Str(); got != "Edinburgh" {
		t.Errorf("victim CITY = %q, want Edinburgh", got)
	}
	if got := row[sc.MustPos("AC")].Int(); got != 131 {
		t.Errorf("victim AC = %d, want 131", got)
	}
	// The London tuples are untouched.
	for id := relstore.TupleID(3); id <= 5; id++ {
		row, _ := res.Repaired.Get(id)
		if row[sc.MustPos("CITY")].Str() != "London" {
			t.Errorf("London tuple %d corrupted to %v", id, row)
		}
	}
}

// TestRepairTerminatesOnPathologicalSet verifies the per-cell change cap:
// even when constraints cannot be reconciled by the heuristic, Repair
// returns (with Remaining > 0) instead of looping.
func TestRepairTerminatesOnPathologicalSet(t *testing.T) {
	tab := relstore.NewTable(schema.New("r", "A", "B", "C"))
	ins := func(a, b, c string) {
		tab.MustInsert(relstore.Tuple{
			types.NewString(a), types.NewString(b), types.NewString(c)})
	}
	// B is tugged by [A]->[B] and by [C]->[B] with 2-2 support each way.
	ins("a1", "x", "c1")
	ins("a1", "x", "c2")
	ins("a1", "y", "c2")
	ins("a2", "y", "c2")
	cfds, err := cfd.ParseSet(`
r: [A=_] -> [B=_]
r: [C=_] -> [B=_]
`)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRepairer()
	r.MaxPasses = 50
	res, err := r.Repair(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	// Termination is the property under test; convergence is a bonus.
	if res.Passes > 50 {
		t.Errorf("passes = %d", res.Passes)
	}
	if res.Converged {
		rep, _ := detect.NativeDetector{}.Detect(context.Background(), res.Repaired, cfds)
		if len(rep.Violations) != 0 {
			t.Error("claims convergence but table is dirty")
		}
	}
}

// TestModifiedCellsNetsOutReverts ensures cells returned to their original
// value are not reported as modified.
func TestModifiedCellsNetsOutReverts(t *testing.T) {
	r := &Result{Modifications: []Modification{
		{TupleID: 1, Attr: "A", Old: types.NewString("x"), New: types.NewString("y")},
		{TupleID: 1, Attr: "A", Old: types.NewString("y"), New: types.NewString("x")},
		{TupleID: 2, Attr: "B", Old: types.NewString("p"), New: types.NewString("q")},
	}}
	cells := r.ModifiedCells()
	if cells["1/A"] {
		t.Error("reverted cell reported as modified")
	}
	if !cells["2/B"] {
		t.Error("changed cell missing")
	}
}

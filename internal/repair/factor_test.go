package repair

import (
	"context"
	"reflect"
	"testing"

	"semandaq/internal/datagen"
	"semandaq/internal/detect"
)

// TestFactorisedRepairMatchesLegacy asserts the factorised repair path —
// groups consumed as partition-class refs, no exploded report — produces
// the exact same repair: same modifications in the same order, same cost,
// same convergence. The legacy side runs the columnar detector (whose
// report is byte-identical to the native one) so both paths see identical
// evidence.
func TestFactorisedRepairMatchesLegacy(t *testing.T) {
	ctx := context.Background()
	cfds := datagen.StandardCFDs()
	for _, noise := range []float64{0.05, 0.2} {
		ds := datagen.Generate(datagen.Config{Tuples: 400, Seed: 29, NoiseRate: noise})

		legacy := NewRepairer()
		legacy.Detector = detect.ColumnarDetector{}
		want, err := legacy.Repair(ctx, ds.Dirty, cfds)
		if err != nil {
			t.Fatal(err)
		}

		fact := NewRepairer()
		fact.Factorised = true
		got, err := fact.Repair(ctx, ds.Dirty, cfds)
		if err != nil {
			t.Fatal(err)
		}

		if !reflect.DeepEqual(got.Modifications, want.Modifications) {
			t.Fatalf("noise=%.2f: factorised repair modifications diverge", noise)
		}
		if got.Cost != want.Cost || got.Passes != want.Passes ||
			got.Converged != want.Converged || got.Remaining != want.Remaining {
			t.Fatalf("noise=%.2f: outcome diverges: %+v vs %+v", noise, got, want)
		}
		for _, id := range want.Repaired.Snapshot().IDs() {
			a, _ := want.Repaired.Get(id)
			b, _ := got.Repaired.Get(id)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("noise=%.2f: repaired tuple %d differs: %v vs %v", noise, id, a, b)
			}
		}
	}
}

package repair

import (
	"context"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/schema"

	"semandaq/internal/relstore"
	"semandaq/internal/types"
)

func TestDefaultCostModel(t *testing.T) {
	m := DefaultCostModel()
	// Weight defaults to 1, distance to normalized DL.
	c := m.Cost(0, "A", types.NewString("abcd"), types.NewString("abcd"))
	if c != 0 {
		t.Errorf("identical cost = %v", c)
	}
	c = m.Cost(0, "A", types.NewString("abcd"), types.NewString("wxyz"))
	if c != 1 {
		t.Errorf("disjoint cost = %v", c)
	}
	c = m.Cost(0, "A", types.NewString("abcd"), types.NewString("abdc"))
	if c <= 0 || c >= 1 {
		t.Errorf("transposition cost = %v, want in (0,1)", c)
	}
}

func TestCustomWeightAndDistance(t *testing.T) {
	m := CostModel{
		Weight: func(id relstore.TupleID, attr string) float64 {
			if attr == "CNT" {
				return 5
			}
			return 1
		},
		Distance: func(a, b types.Value) float64 {
			if a.Equal(b) {
				return 0
			}
			return 0.5
		},
	}
	if c := m.Cost(1, "CNT", types.NewString("x"), types.NewString("y")); c != 2.5 {
		t.Errorf("weighted cost = %v", c)
	}
	if c := m.Cost(1, "STR", types.NewString("x"), types.NewString("y")); c != 0.5 {
		t.Errorf("unweighted cost = %v", c)
	}
	if c := m.Cost(1, "STR", types.NewString("x"), types.NewString("x")); c != 0 {
		t.Errorf("identical custom cost = %v", c)
	}
}

func TestPickCheapestTieBreak(t *testing.T) {
	m := DefaultCostModel()
	old := types.NewString("zz")
	// Two candidates equidistant from old: tie broken by value key.
	best, alts := pickCheapest(m, 0, "A", old, []types.Value{
		types.NewString("bb"), types.NewString("aa"),
	})
	if best.Value.Str() != "aa" {
		t.Errorf("tie-break winner = %v", best.Value)
	}
	if len(alts) != 1 || alts[0].Value.Str() != "bb" {
		t.Errorf("alts = %v", alts)
	}
	// Single candidate: no alternatives.
	best, alts = pickCheapest(m, 0, "A", old, []types.Value{types.NewString("only")})
	if best.Value.Str() != "only" || len(alts) != 0 {
		t.Errorf("single candidate = %v, %v", best, alts)
	}
}

func TestNaiveMergesAblationPath(t *testing.T) {
	// The NaiveMerges knob exists for the A2 ablation: on the tug workload
	// it must terminate (via the per-cell cap) but fail to converge.
	tab := relstore.NewTable(tugSchema())
	fillTug(tab)
	cfds := tugCFDs(t)
	r := NewRepairer()
	r.NaiveMerges = true
	res, err := r.Repair(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Skip("naive strategy happened to converge on this instance")
	}
	if res.Remaining == 0 {
		t.Error("non-converged result must report remaining violations")
	}
	// The full strategy converges on the same input.
	full, err := NewRepairer().Repair(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Converged {
		t.Error("full strategy should converge")
	}
}

// tugSchema / fillTug / tugCFDs build the two-FDs-sharing-an-RHS workload
// shared with the oscillation tests.
func tugSchema() *schema.Relation {
	return schema.New("customer", "CNT", "CITY", "ZIP", "AC")
}

func fillTug(tab *relstore.Table) {
	ins := func(cnt, city, zip string, ac int64) {
		tab.MustInsert(relstore.Tuple{
			types.NewString(cnt), types.NewString(city),
			types.NewString(zip), types.NewInt(ac)})
	}
	ins("UK", "Edinburgh", "EH2", 131)
	ins("UK", "Edinburgh", "EH2", 131)
	ins("UK", "Edinburgh", "EH2", 20) // victim with wrong AC
	ins("UK", "London", "SW1", 20)
	ins("UK", "London", "SW1", 20)
	ins("UK", "London", "SW1", 20)
}

func tugCFDs(t *testing.T) []*cfd.CFD {
	t.Helper()
	cfds, err := cfd.ParseSet(`
zipcity@ customer: [CNT=_, ZIP=_] -> [CITY=_]
accity@  customer: [CNT=_, AC=_] -> [CITY=_]
`)
	if err != nil {
		t.Fatal(err)
	}
	return cfds
}

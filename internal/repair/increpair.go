package repair

import (
	"sort"
	"strings"

	"semandaq/internal/cfd"
	"semandaq/internal/detect"
	"semandaq/internal/relstore"
	"semandaq/internal/types"
)

// IncRepairer implements the incremental repair of the VLDB 2007 paper
// (IncRepair): given a table that is already clean and a batch of fresh
// tuples ΔI, it restores consistency by modifying only the tuples of ΔI —
// the cleaned data is trusted and stays untouched. Semandaq's data monitor
// invokes it when updates arrive after cleansing.
//
// With many interacting CFDs (e.g. a discovered set), per-rule local fixes
// can tug a tuple in circles. IncRepair therefore resolves each tuple by
// EVIDENCE VOTING: every violated constant pattern and every violating
// group with a trusted majority proposes a (cell := value) fix, equal
// proposals accumulate votes, and the best-corroborated fix is applied —
// one per tuple per pass. A proposal that would revert an earlier change is
// handled by the same cost-from-original arbitration as BatchRepair,
// repairing a LHS cell to break the losing group membership instead.
type IncRepairer struct {
	Cost CostModel
	// MaxPasses caps the per-delta fixpoint. Default 15.
	MaxPasses int
}

// NewIncRepairer builds an incremental repairer with defaults.
func NewIncRepairer() *IncRepairer {
	return &IncRepairer{Cost: DefaultCostModel(), MaxPasses: 15}
}

// proposal is one candidate fix for a delta tuple.
type proposal struct {
	attr  string
	val   types.Value
	votes int
	cost  float64
	group *detect.Group // strongest group backing it (nil: constants only)
	cfdID string
}

// RepairDelta repairs the tuples in delta against the CFDs, in place,
// using the tracker's violation index (the tracker must wrap tab). Only
// delta tuples are modified. It returns the modifications applied.
func (ir *IncRepairer) RepairDelta(tr *detect.Tracker, tab *relstore.Table, cfds []*cfd.CFD, delta []relstore.TupleID) ([]Modification, error) {
	maxPasses := ir.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 15
	}
	inDelta := make(map[relstore.TupleID]bool, len(delta))
	for _, id := range delta {
		inDelta[id] = true
	}
	sc := tab.Schema()
	var mods []Modification
	// history: every value each delta cell has held during this run.
	history := map[cellKey][]types.Value{}
	lastGroup := map[cellKey]*detect.Group{}

	held := func(ck cellKey, v types.Value) bool {
		for _, x := range history[ck] {
			if x.Equal(v) {
				return true
			}
		}
		return false
	}

	set := func(id relstore.TupleID, attr string, val types.Value, g *detect.Group, cfdID, reason string) error {
		pos := sc.MustPos(attr)
		row, ok := tab.Get(id)
		if !ok || row[pos].Equal(val) {
			return nil
		}
		old := row[pos]
		ck := cellKey{id, strings.ToLower(attr)}
		if len(history[ck]) == 0 {
			history[ck] = append(history[ck], old)
		}
		if _, err := tr.SetCell(id, attr, val); err != nil {
			return err
		}
		history[ck] = append(history[ck], val)
		lastGroup[ck] = g
		mods = append(mods, Modification{
			TupleID: id, Attr: attr, Old: old, New: val,
			Cost: ir.Cost.Cost(id, attr, old, val), CFDID: cfdID, Reason: reason,
		})
		return nil
	}

	for pass := 0; pass < maxPasses; pass++ {
		rep := tr.Report()
		before := len(mods)

		// Gather proposals per delta tuple.
		props := map[relstore.TupleID]map[string]*proposal{} // key: attr|valKey
		add := func(id relstore.TupleID, attr string, val types.Value, g *detect.Group, cfdID string) {
			row, ok := tab.Get(id)
			if !ok {
				return
			}
			pos := sc.MustPos(attr)
			if row[pos].Equal(val) {
				return
			}
			m := props[id]
			if m == nil {
				m = map[string]*proposal{}
				props[id] = m
			}
			key := strings.ToLower(attr) + "|" + val.Key()
			p := m[key]
			if p == nil {
				p = &proposal{attr: attr, val: val,
					cost:  ir.Cost.Cost(id, attr, row[pos], val),
					cfdID: cfdID}
				m[key] = p
			}
			p.votes++
			if g != nil && (p.group == nil || len(g.Members) > len(p.group.Members)) {
				p.group = g
			}
		}

		// Constant-pattern violations vote for the pattern constant.
		for _, v := range rep.Violations {
			if v.Kind != detect.SingleTuple || !inDelta[v.TupleID] {
				continue
			}
			add(v.TupleID, v.Attr, v.Expected, nil, v.CFDID)
		}
		// Violating groups vote: fixed-majority value for delta members,
		// or the cheapest merge value for all-delta groups.
		for _, g := range rep.Groups {
			pos := sc.MustPos(g.Attr)
			var deltaMembers, fixedMembers []relstore.TupleID
			for _, id := range g.Members {
				if inDelta[id] {
					deltaMembers = append(deltaMembers, id)
				} else {
					fixedMembers = append(fixedMembers, id)
				}
			}
			if len(deltaMembers) == 0 {
				continue // pre-existing conflict among trusted tuples
			}
			var target types.Value
			ok := false
			if len(fixedMembers) > 0 {
				target, ok = majorityValue(tab, fixedMembers, pos)
			} else {
				target, ok = cheapestMerge(ir.Cost, tab, deltaMembers, g.Attr, pos)
			}
			if !ok {
				continue
			}
			for _, id := range deltaMembers {
				add(id, g.Attr, target, g, g.CFDID)
			}
		}

		// Apply the best-corroborated proposal per tuple.
		ids := make([]relstore.TupleID, 0, len(props))
		for id := range props {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			var list []*proposal
			for _, p := range props[id] {
				list = append(list, p)
			}
			sort.SliceStable(list, func(i, j int) bool {
				if list[i].votes != list[j].votes {
					return list[i].votes > list[j].votes
				}
				if list[i].cost != list[j].cost {
					return list[i].cost < list[j].cost
				}
				if !list[i].val.Equal(list[j].val) {
					return list[i].val.Key() < list[j].val.Key()
				}
				return list[i].attr < list[j].attr
			})
			applied := false
			for _, p := range list {
				ck := cellKey{id, strings.ToLower(p.attr)}
				if !held(ck, p.val) {
					if err := set(id, p.attr, p.val, p.group, p.cfdID, "inc: "+reasonOf(p)); err != nil {
						return nil, err
					}
					applied = true
					break
				}
			}
			if applied {
				continue
			}
			// Every proposal reverts an earlier change: oscillation.
			// Arbitrate the top proposal against the cell's current state
			// by total cost from the original value; the loser's group
			// membership is broken via a LHS cell (as in BatchRepair).
			p := list[0]
			ck := cellKey{id, strings.ToLower(p.attr)}
			orig := history[ck][0]
			prev := lastGroup[ck]
			row, ok := tab.Get(id)
			if !ok {
				continue
			}
			pos := sc.MustPos(p.attr)
			const unbreakable = 1e9
			costKeep := ir.Cost.Cost(id, p.attr, orig, row[pos])
			breakKeep := planBreakWith(ir.Cost, tab, id, p.group, prev)
			if breakKeep == nil {
				costKeep += unbreakable
			} else {
				costKeep += breakKeep.cost
			}
			costApply := ir.Cost.Cost(id, p.attr, orig, p.val)
			breakApply := planBreakWith(ir.Cost, tab, id, prev, p.group)
			if breakApply == nil {
				costApply += unbreakable
			} else {
				costApply += breakApply.cost
			}
			if costKeep <= costApply {
				if breakKeep != nil {
					ck2 := cellKey{id, strings.ToLower(breakKeep.attr)}
					if !held(ck2, breakKeep.val) {
						if err := set(id, breakKeep.attr, breakKeep.val, prev, p.cfdID,
							"inc: break membership via "+breakKeep.attr); err != nil {
							return nil, err
						}
					}
				}
				continue
			}
			if err := set(id, p.attr, p.val, p.group, p.cfdID, "inc: arbitrated merge"); err != nil {
				return nil, err
			}
			if breakApply != nil {
				ck2 := cellKey{id, strings.ToLower(breakApply.attr)}
				if !held(ck2, breakApply.val) {
					if err := set(id, breakApply.attr, breakApply.val, p.group, p.cfdID,
						"inc: break membership via "+breakApply.attr); err != nil {
						return nil, err
					}
				}
			}
		}

		if len(mods) == before {
			break
		}
	}
	return mods, nil
}

func reasonOf(p *proposal) string {
	if p.group != nil {
		return "align with clean data"
	}
	return "constant pattern"
}

// majorityValue returns the most frequent value of the given cell position
// among the listed tuples (ties broken by value key).
func majorityValue(tab *relstore.Table, ids []relstore.TupleID, pos int) (types.Value, bool) {
	counts := map[string]int{}
	rep := map[string]types.Value{}
	for _, id := range ids {
		row, ok := tab.Get(id)
		if !ok {
			continue
		}
		k := row[pos].Key()
		counts[k]++
		rep[k] = row[pos]
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bestN := 0
	var best types.Value
	for _, k := range keys {
		if counts[k] > bestN {
			bestN = counts[k]
			best = rep[k]
		}
	}
	return best, bestN > 0
}

// cheapestMerge returns the value among the members' current values that
// minimizes the total change cost.
func cheapestMerge(cost CostModel, tab *relstore.Table, ids []relstore.TupleID, attr string, pos int) (types.Value, bool) {
	vals := map[relstore.TupleID]types.Value{}
	var distinct []types.Value
	seen := map[string]bool{}
	for _, id := range ids {
		row, ok := tab.Get(id)
		if !ok {
			continue
		}
		vals[id] = row[pos]
		if !seen[row[pos].Key()] {
			seen[row[pos].Key()] = true
			distinct = append(distinct, row[pos])
		}
	}
	bestCost := -1.0
	var best types.Value
	for _, cand := range distinct {
		total := 0.0
		for _, id := range ids {
			total += cost.Cost(id, attr, vals[id], cand)
		}
		if bestCost < 0 || total < bestCost ||
			(total == bestCost && cand.Key() < best.Key()) {
			best, bestCost = cand, total
		}
	}
	return best, bestCost >= 0
}

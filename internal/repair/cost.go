// Package repair implements Semandaq's data cleanser: the cost-based
// heuristic repair of Cong, Fan, Geerts, Jia, Ma (VLDB 2007), which fixes
// CFD violations by attribute-value modifications while minimizing a
// weighted edit-distance cost to the original data. Finding a minimum-cost
// repair is intractable (Bohannon et al., SIGMOD 2005), so BatchRepair is a
// greedy fixpoint procedure; IncRepair handles update batches by modifying
// only the new tuples.
package repair

import (
	"semandaq/internal/relstore"
	"semandaq/internal/types"
)

// CostModel prices an attribute-value modification: changing cell (t, A)
// from v to v' costs Weight(t, A) * Distance(v, v'). The VLDB 2007 paper
// uses per-cell confidence weights and normalized Damerau–Levenshtein
// distance; both are pluggable here.
type CostModel struct {
	// Weight returns the confidence weight of a cell; higher means the
	// current value is more trusted and so more expensive to change.
	// Nil means weight 1 everywhere.
	Weight func(id relstore.TupleID, attr string) float64
	// Distance returns a value-change cost in [0, 1].
	// Nil means types.Distance (normalized Damerau–Levenshtein).
	Distance func(a, b types.Value) float64
}

// DefaultCostModel prices every cell with weight 1 and normalized DL
// distance.
func DefaultCostModel() CostModel { return CostModel{} }

func (m CostModel) weight(id relstore.TupleID, attr string) float64 {
	if m.Weight == nil {
		return 1
	}
	return m.Weight(id, attr)
}

func (m CostModel) distance(a, b types.Value) float64 {
	if m.Distance == nil {
		return types.Distance(a, b)
	}
	return m.Distance(a, b)
}

// Cost prices changing cell (id, attr) from old to new.
func (m CostModel) Cost(id relstore.TupleID, attr string, old, new types.Value) float64 {
	return m.weight(id, attr) * m.distance(old, new)
}

// Alternative is one candidate value for a repaired cell, with the cost it
// would have incurred. The data-cleansing review screen (paper Fig. 5)
// shows these ranked by cost.
type Alternative struct {
	Value types.Value
	Cost  float64
}

// Modification records one applied cell change with its provenance.
type Modification struct {
	TupleID relstore.TupleID
	Attr    string
	Old     types.Value
	New     types.Value
	Cost    float64
	// CFDID names the constraint whose violation this change resolves.
	CFDID string
	// Reason distinguishes constant-pattern fixes from group merges.
	Reason string
	// Alternatives ranks the other candidate values that were considered
	// (cheapest first, not including New).
	Alternatives []Alternative
}

package repair

import (
	"context"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/detect"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

func customerTable(t *testing.T) (*relstore.Table, []*cfd.CFD) {
	t.Helper()
	tab := relstore.NewTable(schema.New("customer", "NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"))
	rows := [][]string{
		{"Mike", "UK", "Edinburgh", "EH2 4SD", "Mayfield", "44", "131"},
		{"Rick", "UK", "Edinburgh", "EH2 4SD", "Mayfield", "44", "131"},
		{"Nora", "UK", "Edinburgh", "EH2 4SD", "Mayfeild", "44", "131"}, // typo street
		{"Joe", "US", "New York", "01202", "Mtn Ave", "44", "908"},      // CC=44 but US
		{"Ben", "US", "Chicago", "60601", "Wacker", "1", "312"},
	}
	for _, r := range rows {
		row := make(relstore.Tuple, len(r))
		for i, f := range r {
			row[i] = types.Parse(f)
		}
		tab.MustInsert(row)
	}
	cfds, err := cfd.ParseSet(`
phi2@ customer: [CNT=UK, ZIP=_] -> [STR=_]
phi4@ customer: [CC=44] -> [CNT=UK]
`)
	if err != nil {
		t.Fatal(err)
	}
	return tab, cfds
}

func TestRepairConvergesAndIsClean(t *testing.T) {
	tab, cfds := customerTable(t)
	res, err := NewRepairer().Repair(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %d remaining", res.Remaining)
	}
	rep, err := detect.NativeDetector{}.Detect(context.Background(), res.Repaired, cfds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Errorf("repaired table has %d violations", len(rep.Violations))
	}
	if res.Cost <= 0 {
		t.Errorf("cost = %v", res.Cost)
	}
}

func TestRepairPicksMajorityValue(t *testing.T) {
	tab, cfds := customerTable(t)
	res, err := NewRepairer().Repair(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	// The typo street "Mayfeild" (1 tuple) should be merged into
	// "Mayfield" (2 tuples): 1 change is cheaper than 2, and the edit
	// distance is small either way.
	sc := res.Repaired.Schema()
	row, _ := res.Repaired.Get(2)
	if got := row[sc.MustPos("STR")].Str(); got != "Mayfield" {
		t.Errorf("Nora's street = %q, want Mayfield", got)
	}
	// Mike and Rick keep their value.
	row, _ = res.Repaired.Get(0)
	if got := row[sc.MustPos("STR")].Str(); got != "Mayfield" {
		t.Errorf("Mike's street = %q", got)
	}
}

func TestRepairConstantPattern(t *testing.T) {
	tab, cfds := customerTable(t)
	res, err := NewRepairer().Repair(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	// Joe's CNT must be snapped to UK by phi4.
	sc := res.Repaired.Schema()
	row, _ := res.Repaired.Get(3)
	if got := row[sc.MustPos("CNT")].Str(); got != "UK" {
		t.Errorf("Joe's CNT = %q, want UK", got)
	}
	var found *Modification
	for i := range res.Modifications {
		if res.Modifications[i].TupleID == 3 && res.Modifications[i].Attr == "CNT" {
			found = &res.Modifications[i]
		}
	}
	if found == nil {
		t.Fatal("no modification recorded for Joe's CNT")
	}
	if found.CFDID != "phi4" || found.Old.String() != "US" || found.New.String() != "UK" {
		t.Errorf("modification = %+v", found)
	}
}

func TestOriginalTableUntouched(t *testing.T) {
	tab, cfds := customerTable(t)
	before := tab.Clone()
	if _, err := NewRepairer().Repair(context.Background(), tab, cfds); err != nil {
		t.Fatal(err)
	}
	ids, rows := tab.Rows()
	_, beforeRows := before.Rows()
	for i := range ids {
		if !rows[i].Equal(beforeRows[i]) {
			t.Fatalf("original row %d changed: %v", ids[i], rows[i])
		}
	}
}

func TestModificationAlternativesRanked(t *testing.T) {
	// Three-way group: values A (2x), B (1x), C (1x). Merge target should
	// be A; B and C members get alternatives.
	tab := relstore.NewTable(schema.New("r", "ZIP", "STR"))
	ins := func(zip, str string) {
		tab.MustInsert(relstore.Tuple{types.NewString(zip), types.NewString(str)})
	}
	ins("Z", "Alpha")
	ins("Z", "Alpha")
	ins("Z", "Beta")
	ins("Z", "Gamma")
	fd := cfd.NewFD("f", "r", []string{"ZIP"}, []string{"STR"})
	res, err := NewRepairer().Repair(context.Background(), tab, []*cfd.CFD{fd})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || len(res.Modifications) != 2 {
		t.Fatalf("mods = %+v", res.Modifications)
	}
	for _, m := range res.Modifications {
		if m.New.Str() != "Alpha" {
			t.Errorf("merge target = %v", m.New)
		}
		if len(m.Alternatives) == 0 {
			t.Error("alternatives missing")
		}
		for i := 1; i < len(m.Alternatives); i++ {
			if m.Alternatives[i].Cost < m.Alternatives[i-1].Cost {
				t.Error("alternatives not ranked by cost")
			}
		}
	}
	if len(res.ModifiedCells()) != 2 {
		t.Errorf("ModifiedCells = %v", res.ModifiedCells())
	}
}

func TestWeightedCostChangesTarget(t *testing.T) {
	// Two-value group, equal counts. With a high weight on tuple 0's cell,
	// the repair should keep tuple 0's value and change tuple 1.
	tab := relstore.NewTable(schema.New("r", "K", "V"))
	tab.MustInsert(relstore.Tuple{types.NewString("k"), types.NewString("aaaa")})
	tab.MustInsert(relstore.Tuple{types.NewString("k"), types.NewString("bbbb")})
	fd := cfd.NewFD("f", "r", []string{"K"}, []string{"V"})
	r := NewRepairer()
	r.Cost.Weight = func(id relstore.TupleID, attr string) float64 {
		if id == 0 {
			return 10
		}
		return 1
	}
	res, err := r.Repair(context.Background(), tab, []*cfd.CFD{fd})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Modifications) != 1 || res.Modifications[0].TupleID != 1 {
		t.Fatalf("mods = %+v", res.Modifications)
	}
	if res.Modifications[0].New.Str() != "aaaa" {
		t.Errorf("target = %v", res.Modifications[0].New)
	}
}

func TestInteractingCFDsNeedMultiplePasses(t *testing.T) {
	// Fixing CNT by phi4 makes the tuple match phi2's UK pattern and join
	// a conflicting group — a second pass must resolve that too.
	tab := relstore.NewTable(schema.New("customer", "NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"))
	rows := [][]string{
		{"A", "UK", "Edinburgh", "EH2", "Mayfield", "44", "131"},
		{"B", "UK", "Edinburgh", "EH2", "Mayfield", "44", "131"},
		// C: wrong CNT (US with CC=44) and wrong street; after CNT fix it
		// conflicts with A and B.
		{"C", "US", "Edinburgh", "EH2", "Wrongst", "44", "131"},
	}
	for _, r := range rows {
		row := make(relstore.Tuple, len(r))
		for i, f := range r {
			row[i] = types.Parse(f)
		}
		tab.MustInsert(row)
	}
	cfds, err := cfd.ParseSet(`
phi2@ customer: [CNT=UK, ZIP=_] -> [STR=_]
phi4@ customer: [CC=44] -> [CNT=UK]
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewRepairer().Repair(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged, %d remaining", res.Remaining)
	}
	if res.Passes < 2 {
		t.Errorf("passes = %d, want >= 2", res.Passes)
	}
	sc := res.Repaired.Schema()
	row, _ := res.Repaired.Get(2)
	if row[sc.MustPos("CNT")].Str() != "UK" || row[sc.MustPos("STR")].Str() != "Mayfield" {
		t.Errorf("C repaired to %v", row)
	}
}

func TestRepairCleanTableNoop(t *testing.T) {
	tab := relstore.NewTable(schema.New("r", "A", "B"))
	tab.MustInsert(relstore.Tuple{types.NewString("x"), types.NewString("1")})
	fd := cfd.NewFD("f", "r", []string{"A"}, []string{"B"})
	res, err := NewRepairer().Repair(context.Background(), tab, []*cfd.CFD{fd})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || len(res.Modifications) != 0 || res.Passes != 1 {
		t.Errorf("res = %+v", res)
	}
}

func TestRepairSQLDetectorAgrees(t *testing.T) {
	// Repair driven by the SQL detector yields a clean table too.
	store := relstore.NewStore()
	tab, cfds := customerTable(t)
	store.Put(tab)
	r := NewRepairer()
	// The working snapshot must be registered for the SQL detector; use a
	// wrapper that registers on the fly.
	r.Detector = registeringDetector{store: store}
	res, err := r.Repair(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %d remaining", res.Remaining)
	}
}

// registeringDetector registers the (snapshot) table in a store before
// delegating to the SQL detector.
type registeringDetector struct{ store *relstore.Store }

func (d registeringDetector) Detect(ctx context.Context, tab *relstore.Table, cfds []*cfd.CFD) (*detect.Report, error) {
	d.store.Put(tab)
	return detect.NewSQLDetector(d.store).Detect(ctx, tab, cfds)
}

func TestApply(t *testing.T) {
	tab, cfds := customerTable(t)
	res, err := NewRepairer().Repair(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	applied, skipped, err := Apply(tab, res.Modifications)
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(res.Modifications) || len(skipped) != 0 {
		t.Fatalf("applied=%d skipped=%d", applied, len(skipped))
	}
	rep, err := detect.NativeDetector{}.Detect(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Errorf("original after apply has %d violations", len(rep.Violations))
	}
}

func TestApplySkipsStaleModifications(t *testing.T) {
	tab, cfds := customerTable(t)
	res, err := NewRepairer().Repair(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	// The user edits Joe's CNT before applying: the stale mod is skipped.
	sc := tab.Schema()
	if _, err := tab.SetCell(3, sc.MustPos("CNT"), types.NewString("IE")); err != nil {
		t.Fatal(err)
	}
	_, skipped, err := Apply(tab, res.Modifications)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range skipped {
		if m.TupleID == 3 && m.Attr == "CNT" {
			found = true
		}
	}
	if !found {
		t.Errorf("stale modification not skipped: %+v", skipped)
	}
	// A deleted tuple's modification is skipped too.
	res2, _ := NewRepairer().Repair(context.Background(), tab, cfds)
	tab.Delete(3)
	_, skipped2, err := Apply(tab, res2.Modifications)
	if err != nil {
		t.Fatal(err)
	}
	_ = skipped2 // may or may not include mods depending on repair shape
}

func TestApplyUnknownAttr(t *testing.T) {
	tab, _ := customerTable(t)
	_, _, err := Apply(tab, []Modification{{TupleID: 0, Attr: "NOPE"}})
	if err == nil {
		t.Error("unknown attribute should fail")
	}
}

func TestIncRepairNewTupleAlignsWithCleanData(t *testing.T) {
	tab, cfds := customerTable(t)
	// Clean the base first.
	res, err := NewRepairer().Repair(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	clean := res.Repaired
	tr, err := detect.NewTracker(clean, cfds)
	if err != nil {
		t.Fatal(err)
	}
	// Insert a dirty tuple: wrong street for the EH2 4SD zip and wrong CNT.
	row := relstore.Tuple{
		types.NewString("New"), types.NewString("US"), types.NewString("Edinburgh"),
		types.NewString("EH2 4SD"), types.NewString("Wrongside"),
		types.NewInt(44), types.NewInt(131)}
	id, _, err := tr.Insert(row)
	if err != nil {
		t.Fatal(err)
	}
	mods, err := NewIncRepairer().RepairDelta(tr, clean, cfds, []relstore.TupleID{id})
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) < 2 {
		t.Fatalf("mods = %+v", mods)
	}
	if tr.DirtyCount() != 0 {
		t.Errorf("dirty after inc repair = %d", tr.DirtyCount())
	}
	sc := clean.Schema()
	got, _ := clean.Get(id)
	if got[sc.MustPos("CNT")].Str() != "UK" {
		t.Errorf("CNT = %v", got[sc.MustPos("CNT")])
	}
	if got[sc.MustPos("STR")].Str() != "Mayfield" {
		t.Errorf("STR = %v (must align with existing clean data)", got[sc.MustPos("STR")])
	}
	// The pre-existing tuples were never modified.
	for _, m := range mods {
		if m.TupleID != id {
			t.Errorf("IncRepair modified old tuple %d", m.TupleID)
		}
	}
}

func TestIncRepairAllDeltaGroup(t *testing.T) {
	// Two new tuples conflicting only with each other: merged cheapest.
	tab := relstore.NewTable(schema.New("r", "K", "V"))
	fd := cfd.NewFD("f", "r", []string{"K"}, []string{"V"})
	tr, err := detect.NewTracker(tab, []*cfd.CFD{fd})
	if err != nil {
		t.Fatal(err)
	}
	a, _, _ := tr.Insert(relstore.Tuple{types.NewString("k"), types.NewString("val")})
	b, _, _ := tr.Insert(relstore.Tuple{types.NewString("k"), types.NewString("valx")})
	mods, err := NewIncRepairer().RepairDelta(tr, tab, []*cfd.CFD{fd}, []relstore.TupleID{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if tr.DirtyCount() != 0 {
		t.Errorf("dirty = %d", tr.DirtyCount())
	}
	if len(mods) != 1 {
		t.Fatalf("mods = %+v", mods)
	}
}

func TestIncRepairLeavesPreexistingConflicts(t *testing.T) {
	// A conflict entirely within old data is not the delta's problem.
	tab := relstore.NewTable(schema.New("r", "K", "V"))
	tab.MustInsert(relstore.Tuple{types.NewString("k"), types.NewString("a")})
	tab.MustInsert(relstore.Tuple{types.NewString("k"), types.NewString("b")})
	fd := cfd.NewFD("f", "r", []string{"K"}, []string{"V"})
	tr, err := detect.NewTracker(tab, []*cfd.CFD{fd})
	if err != nil {
		t.Fatal(err)
	}
	id, _, _ := tr.Insert(relstore.Tuple{types.NewString("other"), types.NewString("x")})
	mods, err := NewIncRepairer().RepairDelta(tr, tab, []*cfd.CFD{fd}, []relstore.TupleID{id})
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 0 {
		t.Errorf("mods = %+v", mods)
	}
	if tr.DirtyCount() != 2 {
		t.Errorf("pre-existing dirty = %d, want 2", tr.DirtyCount())
	}
}

package repair

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"semandaq/internal/cfd"
	"semandaq/internal/detect"
	"semandaq/internal/relstore"
	"semandaq/internal/types"
)

// cancelStride is how many items the repair pass loops process between
// context cancellation checks.
const cancelStride = 4096

// Repairer runs the batch repair algorithm.
type Repairer struct {
	Cost CostModel
	// MaxPasses caps the detect-resolve fixpoint; BatchRepair converges in
	// a handful of passes on satisfiable CFD sets. Default 20.
	MaxPasses int
	// Detector finds the violations to resolve; defaults to the native
	// detector.
	Detector detect.Detector
	// MaxCellChanges freezes a cell after this many modifications in one
	// run, guaranteeing termination of pathological interactions.
	// Default 4.
	MaxCellChanges int
	// NaiveMerges disables the oscillation arbitration and LHS
	// membership-breaking: groups are always merged to their cost-optimal
	// value. Exists for the A2 ablation experiment; with interacting
	// constraints the naive strategy thrashes until the per-cell cap.
	NaiveMerges bool
	// Factorised makes each pass consume detect.DetectFactorised directly:
	// multi-tuple groups arrive as partition-class refs plus an RHS
	// histogram and are resolved without ever materializing the exploded
	// report (per-member violation records and RHSOf maps are never
	// built — resolution only needs the member list, which repair walks
	// anyway). The produced repair is identical to the default path's;
	// Detector is ignored when set.
	Factorised bool
}

// NewRepairer builds a repairer with defaults.
func NewRepairer() *Repairer {
	return &Repairer{
		Cost:           DefaultCostModel(),
		MaxPasses:      20,
		Detector:       detect.NativeDetector{},
		MaxCellChanges: 4,
	}
}

// Result is the outcome of a repair run.
type Result struct {
	// Repaired is an independent repaired copy; the input table is never
	// modified (the user reviews the candidate repair before applying it,
	// per the paper's data-cleansing review).
	Repaired *relstore.Table
	// Modifications lists every cell change, in application order.
	Modifications []Modification
	// Cost is the total cost of the modifications.
	Cost float64
	// Passes is the number of detect-resolve rounds executed.
	Passes int
	// Converged is true when the repaired table has zero violations.
	Converged bool
	// Remaining counts violations left when not converged.
	Remaining int
}

// ModifiedCells returns the set of changed cells as "tupleID/attr" keys.
// Cells that ended up back at their original value are excluded.
func (r *Result) ModifiedCells() map[string]bool {
	first := map[string]types.Value{}
	last := map[string]types.Value{}
	for _, m := range r.Modifications {
		k := fmt.Sprintf("%d/%s", m.TupleID, m.Attr)
		if _, ok := first[k]; !ok {
			first[k] = m.Old
		}
		last[k] = m.New
	}
	out := make(map[string]bool, len(last))
	for k, v := range last {
		if !v.Equal(first[k]) {
			out[k] = true
		}
	}
	return out
}

// cellKey identifies a cell (tuple, attribute).
type cellKey struct {
	id   relstore.TupleID
	attr string // lowercased
}

// cellHistory remembers how a cell was last changed, to detect oscillation
// between interacting CFDs (two groups tugging the same RHS cell).
type cellHistory struct {
	values  []types.Value // every value the cell has held this run
	support int           // backing of the last change (agreeing members)
	group   *detect.Group // group context of the last change (nil: constant)
	changes int
}

func (h *cellHistory) held(v types.Value) bool {
	for _, x := range h.values {
		if x.Equal(v) {
			return true
		}
	}
	return false
}

// Repair computes a candidate repair of tab under the CFDs. It follows the
// BatchRepair shape of the VLDB 2007 paper:
//
//  1. detect violations;
//  2. resolve single-tuple (constant-pattern) violations by setting the RHS
//     cell to the pattern constant;
//  3. resolve each multi-tuple group by moving the minority members to the
//     value minimizing the weighted change cost (candidates are the values
//     present in the group — no invented values);
//  4. when two constraints tug one cell back and forth across passes (e.g.
//     two FDs sharing an RHS attribute), arbitrate by majority support and
//     repair a LHS attribute of the losing constraint instead, moving the
//     tuple out of the losing group — the value-modification alternative of
//     Bohannon et al.;
//  5. repeat until clean, or MaxPasses / per-cell change caps hit.
func (r *Repairer) Repair(ctx context.Context, tab *relstore.Table, cfds []*cfd.CFD) (*Result, error) {
	maxPasses := r.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 20
	}
	maxChanges := r.MaxCellChanges
	if maxChanges <= 0 {
		maxChanges = 4
	}
	det := r.Detector
	if det == nil {
		det = detect.NativeDetector{}
	}
	work := tab.Clone()
	res := &Result{Repaired: work}
	sc := work.Schema()

	for _, c := range cfds {
		if err := c.Validate(sc); err != nil {
			return nil, err
		}
	}

	history := map[cellKey]*cellHistory{}

	// detectPass runs one detection round in the configured mode and
	// normalizes the result: the single-tuple violations, the groups to
	// resolve, and the total violation-record count (the legacy report's
	// len(Violations) — the factorised form counts one record per dirty
	// group member without materializing them).
	detectPass := func() ([]detect.Violation, []*detect.Group, int, error) {
		if r.Factorised {
			fr, err := detect.DetectFactorised(ctx, work.Snapshot(), cfds)
			if err != nil {
				return nil, nil, 0, err
			}
			// Build slim group headers, not AsGroup(): resolution re-reads
			// the members' current values from the working table (earlier
			// fixes this pass may have changed them), so the exploded
			// per-member RHS maps would be dead weight.
			groups := make([]*detect.Group, len(fr.FactorGroups))
			remaining := len(fr.Violations)
			for i, g := range fr.FactorGroups {
				groups[i] = &detect.Group{
					CFDID:     g.CFDID,
					Attr:      g.Attr,
					LHSAttrs:  g.LHSAttrs,
					LHSValues: g.LHSValues,
					Members:   g.Members(),
				}
				remaining += g.Size()
			}
			return fr.Violations, groups, remaining, nil
		}
		rep, err := det.Detect(ctx, work, cfds)
		if err != nil {
			return nil, nil, 0, err
		}
		return rep.Violations, rep.Groups, len(rep.Violations), nil
	}

	// change applies one modification with history bookkeeping. Returns
	// false when the cell is frozen.
	change := func(id relstore.TupleID, attr string, newVal types.Value, support int, g *detect.Group, cfdID, reason string, alts []Alternative) (bool, error) {
		ck := cellKey{id, strings.ToLower(attr)}
		h := history[ck]
		if h != nil && h.changes >= maxChanges {
			return false, nil
		}
		pos := sc.MustPos(attr)
		row, ok := work.Get(id)
		if !ok {
			return false, nil
		}
		old := row[pos]
		if old.Equal(newVal) {
			return false, nil
		}
		if _, err := work.SetCell(id, pos, newVal); err != nil {
			return false, err
		}
		if h == nil {
			h = &cellHistory{values: []types.Value{old}}
			history[ck] = h
		}
		h.values = append(h.values, newVal)
		h.support = support
		h.group = g
		h.changes++
		cost := r.Cost.Cost(id, attr, old, newVal)
		res.Modifications = append(res.Modifications, Modification{
			TupleID: id, Attr: attr, Old: old, New: newVal,
			Cost: cost, CFDID: cfdID, Reason: reason, Alternatives: alts,
		})
		res.Cost += cost
		return true, nil
	}

	for pass := 0; pass < maxPasses; pass++ {
		violations, groups, remaining, err := detectPass()
		if err != nil {
			return nil, err
		}
		res.Passes = pass + 1
		if remaining == 0 {
			res.Converged = true
			return res, nil
		}

		changed := false

		// Step 2: constant-pattern fixes. Violations are grouped per cell,
		// but only ONE constant fix is applied per tuple per pass — two
		// mutually-triggered constant patterns (e.g. CITY→AC and AC→CITY)
		// would otherwise flip both cells in tandem forever. Fixing the
		// cheapest cell first removes the other rule's premise.
		constFix := map[cellKey][]detect.Violation{}
		perTuple := map[relstore.TupleID][]cellKey{}
		var tupleOrder []relstore.TupleID
		n := 0
		for _, v := range violations {
			if n++; n%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if v.Kind != detect.SingleTuple {
				continue
			}
			k := cellKey{v.TupleID, strings.ToLower(v.Attr)}
			if _, ok := constFix[k]; !ok {
				if len(perTuple[v.TupleID]) == 0 {
					tupleOrder = append(tupleOrder, v.TupleID)
				}
				perTuple[v.TupleID] = append(perTuple[v.TupleID], k)
			}
			constFix[k] = append(constFix[k], v)
		}
		for _, id := range tupleOrder {
			if n++; n%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			row, ok := work.Get(id)
			if !ok {
				continue
			}
			// Cheapest fix across this tuple's violated cells. A cell that
			// different rules want to set to DIFFERENT constants is
			// contested evidence (e.g. [CITY=x]→CNT=UK vs [CC=1]→CNT=US);
			// prefer an uncontested cell — fixing it usually removes the
			// contested rules' premises.
			type fix struct {
				attr      string
				best      Alternative
				alts      []Alternative
				cfd       string
				contested bool
			}
			var chosen *fix
			better := func(a, b *fix) bool {
				if a.contested != b.contested {
					return !a.contested
				}
				return a.best.Cost < b.best.Cost
			}
			for _, k := range perTuple[id] {
				vs := constFix[k]
				pos := sc.MustPos(vs[0].Attr)
				targets := constantTargets(vs)
				best, alts := pickCheapest(r.Cost, id, vs[0].Attr, row[pos], targets)
				f := &fix{attr: vs[0].Attr, best: best, alts: alts,
					cfd: vs[0].CFDID, contested: len(targets) > 1}
				if chosen == nil || better(f, chosen) {
					chosen = f
				}
			}
			if chosen == nil {
				continue
			}
			did, err := change(id, chosen.attr, chosen.best.Value, 1<<30, nil, chosen.cfd,
				"constant pattern "+chosen.best.Value.String(), chosen.alts)
			if err != nil {
				return nil, err
			}
			changed = changed || did
		}

		// Step 3: multi-tuple group merges with oscillation arbitration.
		for _, g := range groups {
			if n++; n%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			did, err := r.resolveGroup(work, g, history, change)
			if err != nil {
				return nil, err
			}
			changed = changed || did
		}

		if !changed {
			res.Remaining = remaining
			return res, nil
		}
	}

	_, _, remaining, err := detectPass()
	if err != nil {
		return nil, err
	}
	res.Remaining = remaining
	res.Converged = res.Remaining == 0
	return res, nil
}

// changeFn is the history-aware cell modifier used by resolveGroup.
type changeFn func(id relstore.TupleID, attr string, newVal types.Value, support int, g *detect.Group, cfdID, reason string, alts []Alternative) (bool, error)

// resolveGroup merges one violating group to its cost-optimal value,
// arbitrating oscillations via majority support and LHS breaking.
func (r *Repairer) resolveGroup(work *relstore.Table, g *detect.Group, history map[cellKey]*cellHistory, change changeFn) (bool, error) {
	sc := work.Schema()
	pos := sc.MustPos(g.Attr)

	members := append([]relstore.TupleID(nil), g.Members...)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	vals := map[relstore.TupleID]types.Value{}
	counts := map[string]int{}
	type cand struct {
		val   types.Value
		total float64
	}
	var candidates []cand
	seen := map[string]bool{}
	for _, id := range members {
		row, ok := work.Get(id)
		if !ok {
			continue
		}
		vals[id] = row[pos]
		counts[row[pos].Key()]++
		if !seen[row[pos].Key()] {
			seen[row[pos].Key()] = true
			candidates = append(candidates, cand{val: row[pos]})
		}
	}
	if len(candidates) <= 1 {
		return false, nil // already resolved by an earlier fix this pass
	}
	for i := range candidates {
		for _, id := range members {
			candidates[i].total += r.Cost.Cost(id, g.Attr, vals[id], candidates[i].val)
		}
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		if candidates[i].total != candidates[j].total {
			return candidates[i].total < candidates[j].total
		}
		return candidates[i].val.Key() < candidates[j].val.Key()
	})
	target := candidates[0]
	support := counts[target.val.Key()]

	anyChange := false
	for _, id := range members {
		old, ok := vals[id]
		if !ok || old.Equal(target.val) {
			continue
		}
		ck := cellKey{id, strings.ToLower(g.Attr)}
		if h := history[ck]; !r.NaiveMerges && h != nil && h.held(target.val) {
			// Oscillation: another constraint moved this cell away from
			// target before. Arbitrate by the total modification cost of
			// the two consistent outcomes, measured from the tuple's
			// ORIGINAL values (reverting to the original is free — the
			// minimal-change principle of the cost-based repair model):
			//
			//	plan A: keep the previous value, break this group's
			//	        membership (change a LHS cell of this CFD);
			//	plan B: adopt this group's target, break the previous
			//	        group's membership.
			orig := h.values[0]
			const unbreakable = 1e9
			costA := r.Cost.Cost(id, g.Attr, orig, old)
			breakA := r.planBreak(work, id, g, h.group)
			if breakA == nil {
				costA += unbreakable
			} else {
				costA += breakA.cost
			}
			costB := r.Cost.Cost(id, g.Attr, orig, target.val)
			breakB := r.planBreak(work, id, h.group, g)
			if breakB == nil {
				costB += unbreakable
			} else {
				costB += breakB.cost
			}
			if costA <= costB {
				// Plan A: previous change stands; leave the RHS cell and
				// repair this group's LHS membership.
				if breakA != nil {
					did, err := change(id, breakA.attr, breakA.val, h.support, h.group,
						g.CFDID, "break membership via "+breakA.attr, nil)
					if err != nil {
						return false, err
					}
					anyChange = anyChange || did
				}
				continue
			}
			// Plan B: this group wins; apply the merge and break the
			// previous group's membership.
			losing := h.group
			var alts []Alternative
			for _, c := range candidates[1:] {
				alts = append(alts, Alternative{Value: c.val, Cost: r.Cost.Cost(id, g.Attr, old, c.val)})
			}
			did, err := change(id, g.Attr, target.val, support, g, g.CFDID,
				"merge group on "+g.Attr, alts)
			if err != nil {
				return false, err
			}
			anyChange = anyChange || did
			if losing != nil && breakB != nil {
				did, err := change(id, breakB.attr, breakB.val, support, g,
					losing.CFDID, "break membership via "+breakB.attr, nil)
				if err != nil {
					return false, err
				}
				anyChange = anyChange || did
			}
			continue
		}
		var alts []Alternative
		for _, c := range candidates[1:] {
			alts = append(alts, Alternative{Value: c.val, Cost: r.Cost.Cost(id, g.Attr, old, c.val)})
		}
		sort.SliceStable(alts, func(i, j int) bool { return alts[i].Cost < alts[j].Cost })
		did, err := change(id, g.Attr, target.val, support, g, g.CFDID,
			"merge group on "+g.Attr, alts)
		if err != nil {
			return false, err
		}
		anyChange = anyChange || did
	}
	return anyChange, nil
}

// breakOption is a planned LHS-cell repair that moves a tuple out of a
// losing group.
type breakOption struct {
	attr string
	val  types.Value
	cost float64
}

// planBreak finds the cheapest LHS attribute of the losing constraint whose
// repair moves the tuple out of the losing group: the new value is the
// majority value of that attribute among the winner group's members (the
// tuples the winner says this tuple belongs with). Returns nil when no LHS
// attribute can be repaired this way.
func (r *Repairer) planBreak(work *relstore.Table, id relstore.TupleID, losing, winner *detect.Group) *breakOption {
	return planBreakWith(r.Cost, work, id, losing, winner)
}

// planBreakWith is planBreak with an explicit cost model; shared with the
// incremental repairer.
func planBreakWith(cost CostModel, work *relstore.Table, id relstore.TupleID, losing, winner *detect.Group) *breakOption {
	if losing == nil || winner == nil || len(losing.LHSAttrs) == 0 {
		return nil
	}
	sc := work.Schema()
	row, ok := work.Get(id)
	if !ok {
		return nil
	}
	var best *breakOption
	for _, attr := range losing.LHSAttrs {
		pos, ok := sc.Pos(attr)
		if !ok {
			continue
		}
		// Majority value of attr among the winner group's other members.
		counts := map[string]int{}
		rep := map[string]types.Value{}
		for _, wid := range winner.Members {
			if wid == id {
				continue
			}
			wrow, ok := work.Get(wid)
			if !ok {
				continue
			}
			k := wrow[pos].Key()
			counts[k]++
			rep[k] = wrow[pos]
		}
		var bestKey string
		bestN := 0
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if counts[k] > bestN {
				bestKey, bestN = k, counts[k]
			}
		}
		if bestN == 0 {
			continue
		}
		val := rep[bestKey]
		if val.Equal(row[pos]) {
			continue // would not break the membership
		}
		c := cost.Cost(id, attr, row[pos], val)
		if best == nil || c < best.cost {
			best = &breakOption{attr: attr, val: val, cost: c}
		}
	}
	return best
}

// constantTargets lists the distinct expected constants of the violations.
func constantTargets(vs []detect.Violation) []types.Value {
	var out []types.Value
	seen := map[string]bool{}
	for _, v := range vs {
		if !seen[v.Expected.Key()] {
			seen[v.Expected.Key()] = true
			out = append(out, v.Expected)
		}
	}
	return out
}

// pickCheapest prices each candidate and returns the cheapest plus the
// ranked rest.
func pickCheapest(m CostModel, id relstore.TupleID, attr string, old types.Value, cands []types.Value) (Alternative, []Alternative) {
	alts := make([]Alternative, 0, len(cands))
	for _, c := range cands {
		alts = append(alts, Alternative{Value: c, Cost: m.Cost(id, attr, old, c)})
	}
	sort.SliceStable(alts, func(i, j int) bool {
		if alts[i].Cost != alts[j].Cost {
			return alts[i].Cost < alts[j].Cost
		}
		return alts[i].Value.Key() < alts[j].Value.Key()
	})
	return alts[0], alts[1:]
}

// Apply commits a reviewed candidate repair back to the original table.
// Each modification is applied through SetCell; a modification whose Old
// value no longer matches the live cell is skipped and reported (the data
// changed under the review, mirroring the paper's incremental re-detection
// during review).
func Apply(tab *relstore.Table, mods []Modification) (applied int, skipped []Modification, err error) {
	sc := tab.Schema()
	for _, m := range mods {
		pos, ok := sc.Pos(m.Attr)
		if !ok {
			return applied, skipped, fmt.Errorf("repair: apply: no attribute %q", m.Attr)
		}
		row, ok := tab.Get(m.TupleID)
		if !ok {
			skipped = append(skipped, m)
			continue
		}
		if !row[pos].Equal(m.Old) {
			skipped = append(skipped, m)
			continue
		}
		if _, err := tab.SetCell(m.TupleID, pos, m.New); err != nil {
			return applied, skipped, err
		}
		applied++
	}
	return applied, skipped, nil
}

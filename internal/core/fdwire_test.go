package core

import (
	"context"
	"strings"
	"testing"

	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/sqleng"
	"semandaq/internal/types"
)

// TestDiscoverRegistersExactFDs closes the discovery -> planner loop
// through the public API: mining a table whose data holds DID -> DNAME
// must register that fact with the SQL engine, so a later composite-key
// self-join EXPLAIN shows the FD-collapsed PLI probe with its licence.
func TestDiscoverRegistersExactFDs(t *testing.T) {
	ctx := context.Background()
	s := New()
	tab, err := s.Store().Create(schema.New("dept", "DID", "DNAME", "HEAD"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		tab.MustInsert(relstore.Tuple{
			types.NewInt(int64(i % 6)),
			types.NewString("d" + string(rune('a'+i%6))),
			types.NewString("h" + string(rune('a'+i%4))),
		})
	}
	s.RegisterTable(tab)

	const explain = `EXPLAIN SELECT a.HEAD, b.HEAD FROM dept a, dept b
		WHERE a.DID = b.DID AND a.DNAME = b.DNAME`

	res, err := s.SQL(ctx, explain)
	if err != nil {
		t.Fatal(err)
	}
	if text := planText(res); !strings.Contains(text, "join inner hash") {
		t.Fatalf("expected hash join before discovery:\n%s", text)
	}

	if _, err := s.Discover(ctx, "dept", WithMinSupport(2), WithMaxLHS(2)); err != nil {
		t.Fatal(err)
	}
	res, err = s.SQL(ctx, explain)
	if err != nil {
		t.Fatal(err)
	}
	text := planText(res)
	if !strings.Contains(text, "fd-collapsed") || !strings.Contains(text, "fd-collapse: lead") {
		t.Fatalf("discovery did not license the collapse:\n%s", text)
	}
}

// planText flattens an EXPLAIN result to one string.
func planText(res *sqleng.Result) string {
	lines := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		lines[i] = row[0].String()
	}
	return strings.Join(lines, "\n")
}

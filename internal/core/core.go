// Package core wires Semandaq's components (Fig. 1 of the paper) into one
// facade: a store of relational tables, the constraint engine with its
// static analysis, the SQL-based error detector, the data auditor, the data
// cleanser, the data monitor and the data explorer. The CLI, the HTTP
// server, the examples and the benches all drive this type.
package core

import (
	"context"
	"fmt"
	"io"
	"iter"
	"sort"
	"strings"
	"sync"

	"semandaq/internal/audit"
	"semandaq/internal/cfd"
	"semandaq/internal/consistency"
	"semandaq/internal/detect"
	"semandaq/internal/discovery"
	"semandaq/internal/explore"
	"semandaq/internal/monitor"
	"semandaq/internal/relstore"
	"semandaq/internal/repair"
	"semandaq/internal/sqleng"
)

// Semandaq is one data-quality session over a store of tables.
type Semandaq struct {
	mu     sync.Mutex
	store  *relstore.Store
	engine *sqleng.Engine
	// cfds maps lowercased table name to its registered constraints.
	cfds map[string][]*cfd.CFD
	// reports caches the last detection per table, keyed by table version.
	reports map[string]cachedReport
	// workers is the ParallelDetection worker count; 0 means GOMAXPROCS.
	workers int
}

type cachedReport struct {
	version int64
	rep     *detect.Report
}

// New creates a Semandaq instance over an empty store.
func New() *Semandaq { return NewWithStore(relstore.NewStore()) }

// NewWithStore creates a Semandaq instance over an existing store.
func NewWithStore(store *relstore.Store) *Semandaq {
	return &Semandaq{
		store:   store,
		engine:  sqleng.New(store),
		cfds:    map[string][]*cfd.CFD{},
		reports: map[string]cachedReport{},
	}
}

// Store exposes the underlying store.
func (s *Semandaq) Store() *relstore.Store { return s.store }

// SetWorkers sets the goroutine count ParallelDetection uses; n <= 0 —
// zero included — resets to the default (runtime.GOMAXPROCS). The
// detection result does not depend on the worker count, so cached reports
// stay valid.
func (s *Semandaq) SetWorkers(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 {
		n = 0
	}
	s.workers = n
}

// Workers returns the configured ParallelDetection worker count; 0 means
// the GOMAXPROCS default.
func (s *Semandaq) Workers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workers
}

// SQL executes an ad-hoc SQL statement against the store (the paper's data
// explorer lets users navigate the data; this is the programmatic hatch).
// A cancelled ctx aborts the engine's scan loops and returns ctx.Err().
func (s *Semandaq) SQL(ctx context.Context, query string) (*sqleng.Result, error) {
	return s.engine.QueryContext(ctx, query)
}

// LoadCSV reads a CSV stream into a new table.
func (s *Semandaq) LoadCSV(name string, r io.Reader) (*relstore.Table, error) {
	tab, err := relstore.ReadCSV(name, r)
	if err != nil {
		return nil, err
	}
	s.store.Put(tab)
	return tab, nil
}

// RegisterTable adds an existing table to the session.
func (s *Semandaq) RegisterTable(tab *relstore.Table) { s.store.Put(tab) }

// Table returns a registered table.
func (s *Semandaq) Table(name string) (*relstore.Table, error) {
	tab, ok := s.store.Table(name)
	if !ok {
		return nil, fmt.Errorf("semandaq: no table %q", name)
	}
	return tab, nil
}

// Tables lists the registered table names (excluding detection artifacts).
func (s *Semandaq) Tables() []string {
	var out []string
	for _, n := range s.store.Names() {
		if strings.HasPrefix(n, "_tp_") || strings.HasPrefix(n, "_vg_") || strings.HasPrefix(n, "cfd_tp_") {
			continue
		}
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RegisterCFDs attaches constraints to a table after validating them
// against its schema and checking the whole resulting set for
// satisfiability — the constraint engine's "does this make sense" gate.
// On an unsatisfiable set nothing is registered and the conflict is
// returned inside the error.
func (s *Semandaq) RegisterCFDs(table string, cfds []*cfd.CFD) error {
	tab, err := s.Table(table)
	if err != nil {
		return err
	}
	for _, c := range cfds {
		if err := c.Validate(tab.Schema()); err != nil {
			return err
		}
		if c.Table == "" {
			c.Table = tab.Schema().Name
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(table)
	all := append(append([]*cfd.CFD{}, s.cfds[key]...), cfds...)
	rep, err := consistency.Check(tab.Schema(), all, nil)
	if err != nil {
		return err
	}
	if !rep.Satisfiable {
		return fmt.Errorf("semandaq: CFD set for %s is unsatisfiable: %s", table, rep.Conflict)
	}
	s.cfds[key] = all
	for _, kind := range detect.EngineKinds() {
		delete(s.reports, key+"\x00"+kind.String())
	}
	return nil
}

// RegisterCFDText parses the text CFD syntax and registers the result.
func (s *Semandaq) RegisterCFDText(table, text string) ([]*cfd.CFD, error) {
	cfds, err := cfd.ParseSet(text)
	if err != nil {
		return nil, err
	}
	if err := s.RegisterCFDs(table, cfds); err != nil {
		return nil, err
	}
	return cfds, nil
}

// CFDs returns the constraints registered for a table.
func (s *Semandaq) CFDs(table string) []*cfd.CFD {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*cfd.CFD{}, s.cfds[strings.ToLower(table)]...)
}

// CheckConsistency re-runs the satisfiability analysis, optionally with
// finite attribute domains.
func (s *Semandaq) CheckConsistency(table string, domains consistency.Domains) (*consistency.Report, error) {
	tab, err := s.Table(table)
	if err != nil {
		return nil, err
	}
	return consistency.Check(tab.Schema(), s.CFDs(table), domains)
}

// DetectorKind selects the detection implementation. It aliases the
// engine registry's kind (internal/detect), where the engines register
// themselves; core no longer switches on it.
type DetectorKind = detect.EngineKind

// The available detectors.
const (
	// SQLDetection generates and runs the two SQL queries per CFD (the
	// paper's technique).
	SQLDetection = detect.SQLEngine
	// NativeDetection uses in-memory hash grouping over the row store
	// (the single-threaded reference baseline).
	NativeDetection = detect.NativeEngine
	// ParallelDetection shards detection over the table's columnar
	// snapshot across runtime.GOMAXPROCS workers by a hash of each CFD's
	// LHS code vector; the report is identical to NativeDetection's.
	ParallelDetection = detect.ParallelEngine
	// ColumnarDetection runs the sequential scan over the table's
	// columnar snapshot with dictionary-code group keys; the report is
	// identical to NativeDetection's.
	ColumnarDetection = detect.ColumnarEngine
)

// DefaultEngine is the engine blocking requests use when WithEngine is not
// given: the sequential columnar scan, the fastest single-core engine.
const DefaultEngine = ColumnarDetection

// ParseDetectorKind maps the CLI/HTTP engine names ("sql", "native",
// "parallel", "columnar") to a DetectorKind.
func ParseDetectorKind(s string) (DetectorKind, error) {
	return detect.ParseEngineKind(s)
}

// requestCFDs resolves a request's table and its constraints, applying the
// WithCFDs scoping in registration order.
func (s *Semandaq) requestCFDs(table string, o requestOptions) (*relstore.Table, []*cfd.CFD, error) {
	tab, err := s.Table(table)
	if err != nil {
		return nil, nil, err
	}
	cfds := s.CFDs(table)
	if len(cfds) == 0 {
		return nil, nil, fmt.Errorf("semandaq: no CFDs registered for %s", table)
	}
	if len(o.cfdIDs) > 0 {
		want := make(map[string]bool, len(o.cfdIDs))
		for _, id := range o.cfdIDs {
			want[id] = true
		}
		scoped := cfds[:0:0]
		for _, c := range cfds {
			if want[c.ID] {
				scoped = append(scoped, c)
				delete(want, c.ID)
			}
		}
		if len(want) > 0 {
			missing := make([]string, 0, len(want))
			for id := range want {
				missing = append(missing, id)
			}
			sort.Strings(missing)
			return nil, nil, fmt.Errorf("semandaq: no CFD %s registered for %s", strings.Join(missing, ", "), table)
		}
		cfds = scoped
	}
	return tab, cfds, nil
}

// limited returns rep with its violation records truncated to k (k <= 0:
// unchanged). The truncation is a shallow copy with the slice capacity
// clipped, so neither mutation nor append through the returned report can
// reach the cached full report; vio(t) and the per-CFD statistics still
// describe the full scan.
func limited(rep *detect.Report, k int) *detect.Report {
	if k <= 0 || len(rep.Violations) <= k {
		return rep
	}
	out := *rep
	out.Violations = rep.Violations[:k:k]
	return &out
}

// Detect runs violation detection on a table with its registered CFDs:
//
//	rep, err := s.Detect(ctx, "customer",
//	    core.WithEngine(core.ParallelDetection), core.WithWorkers(8))
//
// Without options it uses DefaultEngine, every registered CFD and the
// session's worker count. A cancelled ctx aborts the scan mid-flight and
// returns ctx.Err(). Unscoped reports are cached until the table changes;
// WithCFDs-scoped requests bypass the cache.
func (s *Semandaq) Detect(ctx context.Context, table string, opts ...Option) (*detect.Report, error) {
	o := s.resolve(DefaultEngine, opts)
	tab, cfds, err := s.requestCFDs(table, o)
	if err != nil {
		return nil, err
	}
	return s.detectPrepared(ctx, table, tab, cfds, o)
}

// detectPrepared is Detect after option resolution and CFD scoping: cache
// lookup, registry dispatch, cache fill, limit. Audit reuses it with its
// already-resolved inputs so scoping runs once per request.
func (s *Semandaq) detectPrepared(ctx context.Context, table string, tab *relstore.Table,
	cfds []*cfd.CFD, o requestOptions) (*detect.Report, error) {
	cacheable := len(o.cfdIDs) == 0
	key := strings.ToLower(table) + "\x00" + o.kind.String()
	if cacheable {
		s.mu.Lock()
		if c, ok := s.reports[key]; ok && c.version == tab.Version() {
			s.mu.Unlock()
			return limited(c.rep, o.limit), nil
		}
		s.mu.Unlock()
	}
	det, err := detect.NewDetector(o.kind, detect.Config{Workers: o.workers, Store: s.store})
	if err != nil {
		return nil, err
	}
	version := tab.Version()
	rep, err := det.Detect(ctx, tab, cfds)
	if err != nil {
		return nil, err
	}
	if cacheable {
		s.mu.Lock()
		s.reports[key] = cachedReport{version: version, rep: rep}
		s.mu.Unlock()
	}
	return limited(rep, o.limit), nil
}

// DetectStream runs violation detection as a stream: the returned iterator
// yields each violation as the engine finds it, never materializing the
// full report — on a million-tuple table the first violation arrives while
// the scan is still running. Breaking out of the loop (or a done ctx)
// cancels the underlying scan. The default engine is ParallelDetection,
// whose sharded columnar evaluation feeds the stream through a bounded
// channel; engines without a streaming path (sql, native) fall back to a
// blocking pass whose report is then replayed. Over a full iteration the
// yielded set equals the blocking report's Violations, in engine order.
func (s *Semandaq) DetectStream(ctx context.Context, table string, opts ...Option) iter.Seq2[detect.Violation, error] {
	o := s.resolve(ParallelDetection, opts)
	return func(yield func(detect.Violation, error) bool) {
		tab, cfds, err := s.requestCFDs(table, o)
		if err != nil {
			yield(detect.Violation{}, err)
			return
		}
		det, err := detect.NewDetector(o.kind, detect.Config{Workers: o.workers, Store: s.store})
		if err != nil {
			yield(detect.Violation{}, err)
			return
		}
		n := 0
		if str, ok := det.(detect.Streamer); ok {
			for v, err := range str.DetectStream(ctx, tab, cfds) {
				if err != nil {
					yield(detect.Violation{}, err)
					return
				}
				if !yield(v, nil) {
					return
				}
				if n++; o.limit > 0 && n >= o.limit {
					return
				}
			}
			return
		}
		// Non-streaming engine: replay a blocking pass through the
		// iterator. detectPrepared keeps the report cache in play, so a
		// repeated sql/native stream on an unchanged table is served from
		// cache (the limit is already applied by the truncation).
		rep, err := s.detectPrepared(ctx, table, tab, cfds, o)
		if err != nil {
			yield(detect.Violation{}, err)
			return
		}
		for _, v := range rep.Violations {
			if !yield(v, nil) {
				return
			}
		}
	}
}

// DetectKind runs Detect with the pre-options positional signature.
//
// Deprecated: use Detect(ctx, table, WithEngine(kind)).
func (s *Semandaq) DetectKind(table string, kind DetectorKind) (*detect.Report, error) {
	return s.Detect(context.Background(), table, WithEngine(kind))
}

// DetectWorkers is DetectKind with an explicit worker count for this call
// only (0 = GOMAXPROCS); non-sharded kinds ignore it.
//
// Deprecated: use Detect(ctx, table, WithEngine(kind), WithWorkers(n)).
func (s *Semandaq) DetectWorkers(table string, kind DetectorKind, workers int) (*detect.Report, error) {
	return s.Detect(context.Background(), table, WithEngine(kind), WithWorkers(workers))
}

// DetectionSQL returns the SQL statements Detect would generate (the
// explain view of the error detector).
func (s *Semandaq) DetectionSQL(table string) ([]string, error) {
	tab, err := s.Table(table)
	if err != nil {
		return nil, err
	}
	cfds := s.CFDs(table)
	if len(cfds) == 0 {
		return nil, fmt.Errorf("semandaq: no CFDs registered for %s", table)
	}
	return detect.GenerateSQL(tab, cfds)
}

// Audit produces the data quality report (detecting first if needed).
// WithEngine/WithWorkers/WithCFDs select how and over which constraints;
// WithLimit is ignored — the audit needs the full violation set.
func (s *Semandaq) Audit(ctx context.Context, table string, opts ...Option) (*audit.Report, error) {
	o := s.resolve(DefaultEngine, opts)
	o.limit = 0 // the audit consumes the full violation set
	tab, cfds, err := s.requestCFDs(table, o)
	if err != nil {
		return nil, err
	}
	rep, err := s.detectPrepared(ctx, table, tab, cfds, o)
	if err != nil {
		return nil, err
	}
	return audit.Audit(tab, cfds, rep)
}

// Explore builds the drill-down explorer over the current detection state.
func (s *Semandaq) Explore(ctx context.Context, table string) (*explore.Explorer, error) {
	tab, err := s.Table(table)
	if err != nil {
		return nil, err
	}
	rep, err := s.Detect(ctx, table)
	if err != nil {
		return nil, err
	}
	return explore.New(tab, s.CFDs(table), rep)
}

// Repair computes a candidate repair (the original table is not modified;
// review then ApplyRepair). WithCFDs scopes the constraints being
// repaired; a cancelled ctx aborts the repairer's detect-resolve passes.
func (s *Semandaq) Repair(ctx context.Context, table string, opts ...Option) (*repair.Result, error) {
	o := s.resolve(DefaultEngine, opts)
	tab, cfds, err := s.requestCFDs(table, o)
	if err != nil {
		return nil, err
	}
	return repair.NewRepairer().Repair(ctx, tab, cfds)
}

// ApplyRepair commits reviewed modifications to the live table.
func (s *Semandaq) ApplyRepair(table string, mods []repair.Modification) (int, []repair.Modification, error) {
	tab, err := s.Table(table)
	if err != nil {
		return 0, nil, err
	}
	return repair.Apply(tab, mods)
}

// Monitor starts a data monitor on the table. WithCleansed(true) selects
// incremental repair over incremental detection; WithCFDs scopes the
// monitored constraints. A done ctx prevents the monitor from starting;
// the tracker's initial seeding pass itself is not yet cancellable.
func (s *Semandaq) Monitor(ctx context.Context, table string, opts ...Option) (*monitor.Monitor, error) {
	o := s.resolve(DefaultEngine, opts)
	tab, cfds, err := s.requestCFDs(table, o)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return monitor.New(tab, cfds, o.cleansed)
}

// DiscoverCFDs mines constraints from a reference table (does not register
// them; inspect and register explicitly).
func (s *Semandaq) DiscoverCFDs(refTable string, opts discovery.Options) ([]*cfd.CFD, error) {
	tab, err := s.Table(refTable)
	if err != nil {
		return nil, err
	}
	return discovery.Discover(tab, opts)
}

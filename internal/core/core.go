// Package core wires Semandaq's components (Fig. 1 of the paper) into one
// facade: a store of relational tables, the constraint engine with its
// static analysis, the SQL-based error detector, the data auditor, the data
// cleanser, the data monitor and the data explorer. The CLI, the HTTP
// server, the examples and the benches all drive this type.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"iter"
	"sort"
	"strings"
	"sync"

	"semandaq/internal/audit"
	"semandaq/internal/cfd"
	"semandaq/internal/consistency"
	"semandaq/internal/detect"
	"semandaq/internal/discovery"
	"semandaq/internal/explore"
	"semandaq/internal/monitor"
	"semandaq/internal/relstore"
	"semandaq/internal/repair"
	"semandaq/internal/sqleng"
	"semandaq/internal/types"
)

// ErrMonitorBusy is returned by the mutation API and ActiveMonitor while a
// monitor for the table is being started or replaced: the new tracker is
// seeding from a snapshot, and neither direct writes nor updates to the
// outgoing monitor can be admitted without desynchronizing it. Callers
// should retry shortly (the HTTP layer maps it to 409 Conflict).
var ErrMonitorBusy = errors.New("semandaq: monitor is being (re)started; retry shortly")

// ErrNoMonitor is returned by ApplyUpdates when the table has no active
// monitor.
var ErrNoMonitor = errors.New("semandaq: no active monitor for table")

// Semandaq is one data-quality session over a store of tables.
type Semandaq struct {
	mu     sync.Mutex
	store  *relstore.Store
	engine *sqleng.Engine
	// cfds maps lowercased table name to its registered constraints.
	cfds map[string][]*cfd.CFD
	// reports caches the last detection per table, keyed by table version.
	reports map[string]cachedReport
	// workers is the ParallelDetection worker count; 0 means GOMAXPROCS.
	workers int
	// monitors holds the active data monitor per table (lowercased name):
	// the session's mutation API routes writes through it so incremental
	// detection stays in sync with the data.
	monitors map[string]*monitor.Monitor
	// monitorBusy marks tables whose monitor is currently being started or
	// replaced; mutations are refused (ErrMonitorBusy) until seeding ends.
	monitorBusy map[string]bool
	// gates serializes the session's mutations per table: a write checks
	// for an active monitor and lands (directly or through the monitor's
	// tracker) while holding the table's gate, and starting a monitor
	// flips monitorBusy under the same gate — so no write can slip
	// between the snapshot a new tracker seeds from and the moment it
	// takes over.
	gates map[string]*sync.Mutex
	// sessions holds the incremental discovery session per table
	// (lowercased name): Discover refreshes the previous mining run in
	// O(changed columns) instead of re-mining from scratch.
	sessions map[string]*tableSession
}

// tableSession binds a discovery session to the table instance it was
// created over, so a replaced table never reuses the old session's caches.
type tableSession struct {
	tab  *relstore.Table
	sess *discovery.Session
}

type cachedReport struct {
	version int64
	rep     *detect.Report
}

// New creates a Semandaq instance over an empty store.
func New() *Semandaq { return NewWithStore(relstore.NewStore()) }

// NewWithStore creates a Semandaq instance over an existing store.
func NewWithStore(store *relstore.Store) *Semandaq {
	return &Semandaq{
		store:       store,
		engine:      sqleng.New(store),
		cfds:        map[string][]*cfd.CFD{},
		reports:     map[string]cachedReport{},
		monitors:    map[string]*monitor.Monitor{},
		monitorBusy: map[string]bool{},
		gates:       map[string]*sync.Mutex{},
		sessions:    map[string]*tableSession{},
	}
}

// gate returns the per-table mutation gate, creating it on first use.
func (s *Semandaq) gate(key string) *sync.Mutex {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gates[key]
	if !ok {
		g = &sync.Mutex{}
		s.gates[key] = g
	}
	return g
}

// Store exposes the underlying store.
func (s *Semandaq) Store() *relstore.Store { return s.store }

// SetWorkers sets the goroutine count ParallelDetection uses; n <= 0 —
// zero included — resets to the default (runtime.GOMAXPROCS). The
// detection result does not depend on the worker count, so cached reports
// stay valid.
func (s *Semandaq) SetWorkers(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 {
		n = 0
	}
	s.workers = n
}

// Workers returns the configured ParallelDetection worker count; 0 means
// the GOMAXPROCS default.
func (s *Semandaq) Workers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workers
}

// SQL executes an ad-hoc SQL statement against the store (the paper's data
// explorer lets users navigate the data; this is the programmatic hatch).
// A cancelled ctx aborts the engine's scan loops and returns ctx.Err().
//
// SQL DML writes the store directly — it does NOT route through a table's
// active monitor or the session's mutation gate, so running UPDATE/DELETE/
// INSERT against a monitored table desynchronizes its tracker. Use the
// session's Insert/Delete/SetCell/ApplyUpdates for monitored tables; keep
// SQL DML for unmonitored ones.
func (s *Semandaq) SQL(ctx context.Context, query string) (*sqleng.Result, error) {
	return s.engine.QueryContext(ctx, query)
}

// LoadCSV reads a CSV stream into a new table.
func (s *Semandaq) LoadCSV(name string, r io.Reader) (*relstore.Table, error) {
	tab, err := relstore.ReadCSV(name, r)
	if err != nil {
		return nil, err
	}
	s.RegisterTable(tab)
	return tab, nil
}

// RegisterTable adds an existing table to the session, replacing any table
// of the same name. Per-table state bound to the replaced instance — its
// active monitor and cached reports — is detached: a monitor left
// registered would keep routing writes into the orphaned old table, and a
// cached report could alias the new table's version counter.
func (s *Semandaq) RegisterTable(tab *relstore.Table) {
	key := strings.ToLower(tab.Schema().Name)
	g := s.gate(key)
	g.Lock()
	defer g.Unlock()
	s.store.Put(tab)
	s.mu.Lock()
	delete(s.monitors, key)
	delete(s.sessions, key)
	for _, kind := range detect.EngineKinds() {
		delete(s.reports, key+"\x00"+kind.String())
	}
	s.mu.Unlock()
}

// Table returns a registered table.
func (s *Semandaq) Table(name string) (*relstore.Table, error) {
	tab, ok := s.store.Table(name)
	if !ok {
		return nil, fmt.Errorf("semandaq: no table %q", name)
	}
	return tab, nil
}

// Tables lists the registered table names (excluding detection artifacts).
func (s *Semandaq) Tables() []string {
	var out []string
	for _, n := range s.store.Names() {
		if strings.HasPrefix(n, "_tp_") || strings.HasPrefix(n, "_vg_") || strings.HasPrefix(n, "cfd_tp_") {
			continue
		}
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RegisterCFDs attaches constraints to a table after validating them
// against its schema and checking the whole resulting set for
// satisfiability — the constraint engine's "does this make sense" gate.
// On an unsatisfiable set nothing is registered and the conflict is
// returned inside the error.
func (s *Semandaq) RegisterCFDs(table string, cfds []*cfd.CFD) error {
	tab, err := s.Table(table)
	if err != nil {
		return err
	}
	for _, c := range cfds {
		if err := c.Validate(tab.Schema()); err != nil {
			return err
		}
		if c.Table == "" {
			c.Table = tab.Schema().Name
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(table)
	all := append(append([]*cfd.CFD{}, s.cfds[key]...), cfds...)
	rep, err := consistency.Check(tab.Schema(), all, nil)
	if err != nil {
		return err
	}
	if !rep.Satisfiable {
		return fmt.Errorf("semandaq: CFD set for %s is unsatisfiable: %s", table, rep.Conflict)
	}
	s.cfds[key] = all
	for _, kind := range detect.EngineKinds() {
		delete(s.reports, key+"\x00"+kind.String())
	}
	return nil
}

// RegisterCFDText parses the text CFD syntax and registers the result.
func (s *Semandaq) RegisterCFDText(table, text string) ([]*cfd.CFD, error) {
	cfds, err := cfd.ParseSet(text)
	if err != nil {
		return nil, err
	}
	if err := s.RegisterCFDs(table, cfds); err != nil {
		return nil, err
	}
	return cfds, nil
}

// CFDs returns the constraints registered for a table.
func (s *Semandaq) CFDs(table string) []*cfd.CFD {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*cfd.CFD{}, s.cfds[strings.ToLower(table)]...)
}

// CheckConsistency re-runs the satisfiability analysis, optionally with
// finite attribute domains.
func (s *Semandaq) CheckConsistency(table string, domains consistency.Domains) (*consistency.Report, error) {
	tab, err := s.Table(table)
	if err != nil {
		return nil, err
	}
	return consistency.Check(tab.Schema(), s.CFDs(table), domains)
}

// DetectorKind selects the detection implementation. It aliases the
// engine registry's kind (internal/detect), where the engines register
// themselves; core no longer switches on it.
type DetectorKind = detect.EngineKind

// The available detectors.
const (
	// SQLDetection generates and runs the two SQL queries per CFD (the
	// paper's technique).
	SQLDetection = detect.SQLEngine
	// NativeDetection uses in-memory hash grouping over the row store
	// (the single-threaded reference baseline).
	NativeDetection = detect.NativeEngine
	// ParallelDetection shards detection over the table's columnar
	// snapshot across runtime.GOMAXPROCS workers by a hash of each CFD's
	// LHS code vector; the report is identical to NativeDetection's.
	ParallelDetection = detect.ParallelEngine
	// ColumnarDetection runs the sequential scan over the table's
	// columnar snapshot with dictionary-code group keys; the report is
	// identical to NativeDetection's.
	ColumnarDetection = detect.ColumnarEngine
)

// DefaultEngine is the engine blocking requests use when WithEngine is not
// given: the sequential columnar scan, the fastest single-core engine.
const DefaultEngine = ColumnarDetection

// ParseDetectorKind maps the CLI/HTTP engine names ("sql", "native",
// "parallel", "columnar") to a DetectorKind.
func ParseDetectorKind(s string) (DetectorKind, error) {
	return detect.ParseEngineKind(s)
}

// requestCFDs resolves a request's table and its constraints, applying the
// WithCFDs scoping in registration order.
func (s *Semandaq) requestCFDs(table string, o requestOptions) (*relstore.Table, []*cfd.CFD, error) {
	tab, err := s.Table(table)
	if err != nil {
		return nil, nil, err
	}
	cfds := s.CFDs(table)
	if len(cfds) == 0 {
		return nil, nil, fmt.Errorf("semandaq: no CFDs registered for %s", table)
	}
	if len(o.cfdIDs) > 0 {
		want := make(map[string]bool, len(o.cfdIDs))
		for _, id := range o.cfdIDs {
			want[id] = true
		}
		scoped := cfds[:0:0]
		for _, c := range cfds {
			if want[c.ID] {
				scoped = append(scoped, c)
				delete(want, c.ID)
			}
		}
		if len(want) > 0 {
			missing := make([]string, 0, len(want))
			for id := range want {
				missing = append(missing, id)
			}
			sort.Strings(missing)
			return nil, nil, fmt.Errorf("semandaq: no CFD %s registered for %s", strings.Join(missing, ", "), table)
		}
		cfds = scoped
	}
	return tab, cfds, nil
}

// sameCFDSet reports whether the monitor tracks exactly the requested
// constraint instances, in registration order. Pointer identity is the
// right test: RegisterCFDs hands both the monitor and the request the same
// *cfd.CFD values, and any re-registration creates new ones.
func sameCFDSet(a, b []*cfd.CFD) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// limited returns rep with its violation records truncated to k (k <= 0:
// unchanged). The truncation is a shallow copy with the slice capacity
// clipped, so neither mutation nor append through the returned report can
// reach the cached full report; vio(t) and the per-CFD statistics still
// describe the full scan.
func limited(rep *detect.Report, k int) *detect.Report {
	if k <= 0 || len(rep.Violations) <= k {
		return rep
	}
	out := *rep
	out.Violations = rep.Violations[:k:k]
	return &out
}

// Detect runs violation detection on a table with its registered CFDs:
//
//	rep, err := s.Detect(ctx, "customer",
//	    core.WithEngine(core.ParallelDetection), core.WithWorkers(8))
//
// Without options it uses DefaultEngine, every registered CFD and the
// session's worker count. A cancelled ctx aborts the scan mid-flight and
// returns ctx.Err(). Unscoped reports are cached until the table changes;
// WithCFDs-scoped requests bypass the cache.
func (s *Semandaq) Detect(ctx context.Context, table string, opts ...Option) (*detect.Report, error) {
	o := s.resolve(DefaultEngine, opts)
	tab, cfds, err := s.requestCFDs(table, o)
	if err != nil {
		return nil, err
	}
	return s.detectPrepared(ctx, table, tab.Snapshot(), cfds, o)
}

// detectPrepared is Detect after option resolution and CFD scoping: cache
// lookup, registry dispatch, cache fill, limit. The whole evaluation runs
// over the given pinned snapshot, so the returned report reflects exactly
// snap.Version() (and says so in Report.Version). Audit and Explore reuse
// it with the snapshot they drive their own scans from, which makes the
// report and those scans consistent by construction.
func (s *Semandaq) detectPrepared(ctx context.Context, table string, snap *relstore.Snapshot,
	cfds []*cfd.CFD, o requestOptions) (*detect.Report, error) {
	cacheable := len(o.cfdIDs) == 0
	key := strings.ToLower(table) + "\x00" + o.kind.String()
	if cacheable {
		s.mu.Lock()
		if c, ok := s.reports[key]; ok && c.version == snap.Version() {
			s.mu.Unlock()
			return limited(c.rep, o.limit), nil
		}
		s.mu.Unlock()
		// Incremental-first serving: when the table's active monitor tracks
		// exactly the requested constraints, its tracker has maintained the
		// violation state in O(delta) per write — materializing its report is
		// far cheaper than a batch scan and provably identical to one (the
		// mutation cross-check tier). Served only when the tracker's version
		// matches the pinned snapshot's, so a racing write falls through to
		// the batch engine instead of answering for the wrong version.
		if m, err := s.ActiveMonitor(table); err == nil && m != nil && sameCFDSet(m.CFDs(), cfds) {
			if rep := m.Report(); rep.Version == snap.Version() {
				s.mu.Lock()
				s.reports[key] = cachedReport{version: rep.Version, rep: rep}
				s.mu.Unlock()
				return limited(rep, o.limit), nil
			}
		}
	}
	det, err := detect.NewDetector(o.kind, detect.Config{Workers: o.workers, Store: s.store})
	if err != nil {
		return nil, err
	}
	var rep *detect.Report
	if sd, ok := det.(detect.SnapshotDetector); ok {
		rep, err = sd.DetectSnapshot(ctx, snap, cfds)
	} else {
		// Registry-extended engine without a snapshot entry point: fall
		// back to the live table. Its report may describe a version newer
		// than snap's (and callers pairing it with snap — Audit, Explore —
		// lose the by-construction consistency), so custom engines should
		// implement SnapshotDetector.
		var tab *relstore.Table
		tab, err = s.Table(table)
		if err != nil {
			return nil, err
		}
		rep, err = det.Detect(ctx, tab, cfds)
	}
	if err != nil {
		return nil, err
	}
	// Cache keyed by the version the report itself claims; a fallback
	// engine that does not stamp Version (0 on a non-empty table) is
	// simply not cached rather than cached under a bogus key.
	if cacheable && (rep.Version == snap.Version() || rep.Version > 0) {
		s.mu.Lock()
		s.reports[key] = cachedReport{version: rep.Version, rep: rep}
		s.mu.Unlock()
	}
	return limited(rep, o.limit), nil
}

// DetectStream runs violation detection as a stream: the returned iterator
// yields each violation as the engine finds it, never materializing the
// full report — on a million-tuple table the first violation arrives while
// the scan is still running. Breaking out of the loop (or a done ctx)
// cancels the underlying scan. The default engine is ParallelDetection,
// whose sharded columnar evaluation feeds the stream through a bounded
// channel; engines without a streaming path (sql, native) fall back to a
// blocking pass whose report is then replayed. Over a full iteration the
// yielded set equals the blocking report's Violations, in engine order.
func (s *Semandaq) DetectStream(ctx context.Context, table string, opts ...Option) iter.Seq2[detect.Violation, error] {
	return func(yield func(detect.Violation, error) bool) {
		seq, _, err := s.DetectStreamVersion(ctx, table, opts...)
		if err != nil {
			yield(detect.Violation{}, err)
			return
		}
		for v, err := range seq {
			if !yield(v, err) {
				return
			}
		}
	}
}

// DetectStreamVersion is DetectStream with the pinned table version
// surfaced: the returned stream evaluates exactly that version, so callers
// relaying violations (the NDJSON endpoint) can stamp their output with
// it. Request-shape errors (unknown table, unknown CFD id, unknown
// engine) are returned eagerly instead of through the stream.
func (s *Semandaq) DetectStreamVersion(ctx context.Context, table string, opts ...Option) (iter.Seq2[detect.Violation, error], int64, error) {
	o := s.resolve(ParallelDetection, opts)
	tab, cfds, err := s.requestCFDs(table, o)
	if err != nil {
		return nil, 0, err
	}
	det, err := detect.NewDetector(o.kind, detect.Config{Workers: o.workers, Store: s.store})
	if err != nil {
		return nil, 0, err
	}
	snap := tab.Snapshot()
	seq := func(yield func(detect.Violation, error) bool) {
		n := 0
		if str, ok := det.(detect.SnapshotStreamer); ok {
			for v, err := range str.DetectStreamSnapshot(ctx, snap, cfds) {
				if err != nil {
					yield(detect.Violation{}, err)
					return
				}
				if !yield(v, nil) {
					return
				}
				if n++; o.limit > 0 && n >= o.limit {
					return
				}
			}
			return
		}
		// Non-streaming engine: replay a blocking pass through the
		// iterator. detectPrepared keeps the report cache in play, so a
		// repeated sql/native stream on an unchanged table is served from
		// cache (the limit is already applied by the truncation).
		rep, err := s.detectPrepared(ctx, table, snap, cfds, o)
		if err != nil {
			yield(detect.Violation{}, err)
			return
		}
		for _, v := range rep.Violations {
			if err := ctx.Err(); err != nil {
				yield(detect.Violation{}, err)
				return
			}
			if !yield(v, nil) {
				return
			}
		}
	}
	return seq, snap.Version(), nil
}

// DetectKind runs Detect with the pre-options positional signature.
//
// Deprecated: use Detect(ctx, table, WithEngine(kind)).
func (s *Semandaq) DetectKind(table string, kind DetectorKind) (*detect.Report, error) {
	//semandaq:vet-ignore ctxloop deprecated context-free wrapper by design
	return s.Detect(context.Background(), table, WithEngine(kind))
}

// DetectWorkers is DetectKind with an explicit worker count for this call
// only (0 = GOMAXPROCS); non-sharded kinds ignore it.
//
// Deprecated: use Detect(ctx, table, WithEngine(kind), WithWorkers(n)).
func (s *Semandaq) DetectWorkers(table string, kind DetectorKind, workers int) (*detect.Report, error) {
	//semandaq:vet-ignore ctxloop deprecated context-free wrapper by design
	return s.Detect(context.Background(), table, WithEngine(kind), WithWorkers(workers))
}

// DetectionSQL returns the SQL statements Detect would generate (the
// explain view of the error detector).
func (s *Semandaq) DetectionSQL(table string) ([]string, error) {
	tab, err := s.Table(table)
	if err != nil {
		return nil, err
	}
	cfds := s.CFDs(table)
	if len(cfds) == 0 {
		return nil, fmt.Errorf("semandaq: no CFDs registered for %s", table)
	}
	return detect.GenerateSQL(tab, cfds)
}

// Audit produces the data quality report (detecting first if needed). The
// classification scan and the detection run over one pinned snapshot, so
// the audit is single-version consistent even under concurrent writers.
// WithEngine/WithWorkers/WithCFDs select how and over which constraints;
// WithLimit is ignored — the audit needs the full violation set.
func (s *Semandaq) Audit(ctx context.Context, table string, opts ...Option) (*audit.Report, error) {
	o := s.resolve(DefaultEngine, opts)
	o.limit = 0 // the audit consumes the full violation set
	tab, cfds, err := s.requestCFDs(table, o)
	if err != nil {
		return nil, err
	}
	snap := tab.Snapshot()
	rep, err := s.detectPrepared(ctx, table, snap, cfds, o)
	if err != nil {
		return nil, err
	}
	return audit.Audit(snap, cfds, rep)
}

// Explore builds the drill-down explorer over the current detection state.
// The explorer's scans and the report it drills into share one pinned
// snapshot, so every level of the drill-down reflects the same version.
func (s *Semandaq) Explore(ctx context.Context, table string) (*explore.Explorer, error) {
	o := s.resolve(DefaultEngine, nil)
	tab, cfds, err := s.requestCFDs(table, o)
	if err != nil {
		return nil, err
	}
	snap := tab.Snapshot()
	rep, err := s.detectPrepared(ctx, table, snap, cfds, o)
	if err != nil {
		return nil, err
	}
	return explore.New(snap, cfds, rep)
}

// Repair computes a candidate repair (the original table is not modified;
// review then ApplyRepair). WithCFDs scopes the constraints being
// repaired; a cancelled ctx aborts the repairer's detect-resolve passes.
func (s *Semandaq) Repair(ctx context.Context, table string, opts ...Option) (*repair.Result, error) {
	o := s.resolve(DefaultEngine, opts)
	tab, cfds, err := s.requestCFDs(table, o)
	if err != nil {
		return nil, err
	}
	return repair.NewRepairer().Repair(ctx, tab, cfds)
}

// ApplyRepair commits reviewed modifications to the live table, through
// the session's write path: with a monitor active each cell edit routes
// through its tracker (the violation index follows the repair), and the
// whole apply runs under the table's mutation gate. A modification whose
// Old value no longer matches the live cell is skipped and reported, as
// in repair.Apply. Returns ErrMonitorBusy while a monitor is being
// (re)started.
func (s *Semandaq) ApplyRepair(table string, mods []repair.Modification) (int, []repair.Modification, error) {
	applied := 0
	var skipped []repair.Modification
	err := s.withTableWrite(table, func(tab *relstore.Table, m *monitor.Monitor) error {
		if m == nil {
			var err error
			applied, skipped, err = repair.Apply(tab, mods)
			return err
		}
		sc := tab.Schema()
		for _, mod := range mods {
			pos, ok := sc.Pos(mod.Attr)
			if !ok {
				return fmt.Errorf("semandaq: apply repair: no attribute %q", mod.Attr)
			}
			row, ok := tab.Get(mod.TupleID)
			if !ok || !row[pos].Equal(mod.Old) {
				skipped = append(skipped, mod)
				continue
			}
			if _, err := m.Apply([]monitor.Update{{Op: monitor.OpSet, ID: mod.TupleID, Attr: mod.Attr, Value: mod.New}}); err != nil {
				return err
			}
			applied++
		}
		return nil
	})
	return applied, skipped, err
}

// Monitor starts a data monitor on the table and registers it as the
// table's active monitor: from then on the session's mutation API (Insert,
// Delete, SetCell, ApplyUpdates) routes writes through it, keeping
// incremental detection in sync with the data. Starting a monitor where
// one is already active replaces it; while the replacement's tracker is
// seeding, mutations and ActiveMonitor return ErrMonitorBusy instead of
// racing the handover. WithCleansed(true) selects incremental repair over
// incremental detection; WithCFDs scopes the monitored constraints. A done
// ctx prevents the monitor from starting; the tracker's initial seeding
// pass itself is not yet cancellable.
func (s *Semandaq) Monitor(ctx context.Context, table string, opts ...Option) (*monitor.Monitor, error) {
	o := s.resolve(DefaultEngine, opts)
	tab, cfds, err := s.requestCFDs(table, o)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := strings.ToLower(table)
	// Flip the busy flag under the table's mutation gate: in-flight writes
	// finish first, later writes see the flag and back off, so the
	// snapshot the new tracker seeds from cannot miss a concurrent write.
	g := s.gate(key)
	g.Lock()
	s.mu.Lock()
	if s.monitorBusy[key] {
		s.mu.Unlock()
		g.Unlock()
		return nil, ErrMonitorBusy
	}
	s.monitorBusy[key] = true
	s.mu.Unlock()
	g.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.monitorBusy, key)
		s.mu.Unlock()
	}()
	m, err := monitor.New(tab, cfds, o.cleansed)
	if err != nil {
		return nil, err
	}
	if cur, ok := s.store.Table(table); !ok || cur != tab {
		return nil, fmt.Errorf("semandaq: table %q was replaced while its monitor was starting", table)
	}
	s.mu.Lock()
	s.monitors[key] = m
	s.mu.Unlock()
	return m, nil
}

// withTableWrite resolves the table and runs fn under the table's mutation
// gate with the active monitor (nil when none). It is the single write-path
// preamble: serialized against the session's other writes and refused with
// ErrMonitorBusy while a monitor is being (re)started.
func (s *Semandaq) withTableWrite(table string, fn func(tab *relstore.Table, m *monitor.Monitor) error) error {
	tab, err := s.Table(table)
	if err != nil {
		return err
	}
	g := s.gate(strings.ToLower(table))
	g.Lock()
	defer g.Unlock()
	m, err := s.ActiveMonitor(table)
	if err != nil {
		return err
	}
	return fn(tab, m)
}

// ActiveMonitor returns the table's registered monitor, or nil when none
// has been started. While a monitor is being started or replaced it
// returns ErrMonitorBusy: the outgoing monitor is about to be detached and
// updates routed to it would be lost to the replacement's tracker.
func (s *Semandaq) ActiveMonitor(table string) (*monitor.Monitor, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(table)
	if s.monitorBusy[key] {
		return nil, ErrMonitorBusy
	}
	return s.monitors[key], nil
}

// StopMonitor detaches the table's active monitor; it reports whether one
// was registered. Subsequent mutations write the table directly.
func (s *Semandaq) StopMonitor(table string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(table)
	_, ok := s.monitors[key]
	delete(s.monitors, key)
	return ok
}

// ApplyUpdates runs one update batch through the table's active monitor.
// It returns ErrNoMonitor when none is registered and ErrMonitorBusy while
// a monitor is being (re)started. The batch runs under the table's
// mutation gate, serialized against the session's other writes.
func (s *Semandaq) ApplyUpdates(table string, batch []monitor.Update) (*monitor.BatchResult, error) {
	var res *monitor.BatchResult
	err := s.withTableWrite(table, func(_ *relstore.Table, m *monitor.Monitor) error {
		if m == nil {
			return ErrNoMonitor
		}
		var err error
		res, err = m.Apply(batch)
		return err
	})
	return res, err
}

// Insert appends a row to the table through the session's write path: via
// the active monitor when one exists (incremental detection sees the row
// immediately), directly into the store otherwise. It returns the new
// tuple's ID and the table version after the write.
func (s *Semandaq) Insert(table string, row relstore.Tuple) (relstore.TupleID, int64, error) {
	var id relstore.TupleID
	var version int64
	err := s.withTableWrite(table, func(tab *relstore.Table, m *monitor.Monitor) error {
		if m != nil {
			res, err := m.Apply([]monitor.Update{{Op: monitor.OpInsert, Row: row}})
			if err != nil {
				return err
			}
			id, version = res.Inserted[0], res.Version
			return nil
		}
		var err error
		if id, err = tab.Insert(row); err != nil {
			return err
		}
		version = tab.Version()
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	return id, version, nil
}

// Delete removes the tuple through the session's write path (see Insert).
// It returns the table version after the write.
func (s *Semandaq) Delete(table string, id relstore.TupleID) (int64, error) {
	var version int64
	err := s.withTableWrite(table, func(tab *relstore.Table, m *monitor.Monitor) error {
		if m != nil {
			res, err := m.Apply([]monitor.Update{{Op: monitor.OpDelete, ID: id}})
			if err != nil {
				return err
			}
			version = res.Version
			return nil
		}
		if !tab.Delete(id) {
			return fmt.Errorf("semandaq: no tuple %d in %s", id, table)
		}
		version = tab.Version()
		return nil
	})
	if err != nil {
		return 0, err
	}
	return version, nil
}

// SetCell updates one attribute of a tuple through the session's write
// path (see Insert). It returns the table version after the write.
func (s *Semandaq) SetCell(table string, id relstore.TupleID, attr string, v types.Value) (int64, error) {
	var version int64
	err := s.withTableWrite(table, func(tab *relstore.Table, m *monitor.Monitor) error {
		if m != nil {
			res, err := m.Apply([]monitor.Update{{Op: monitor.OpSet, ID: id, Attr: attr, Value: v}})
			if err != nil {
				return err
			}
			version = res.Version
			return nil
		}
		pos, ok := tab.Schema().Pos(attr)
		if !ok {
			return fmt.Errorf("semandaq: no attribute %q in %s", attr, table)
		}
		if _, err := tab.SetCell(id, pos, v); err != nil {
			return err
		}
		version = tab.Version()
		return nil
	})
	if err != nil {
		return 0, err
	}
	return version, nil
}

// Discover mines constraints from a reference table with the PLI lattice
// miner:
//
//	rep, err := s.Discover(ctx, "customer",
//	    core.WithMinSupport(100), core.WithMaxLHS(3), core.WithWorkers(8))
//
// The search runs over one pinned snapshot of the table and the returned
// discovery.Report carries that snapshot's version alongside every mined
// candidate's support and confidence. No constraint is registered — inspect
// the report and RegisterCFDs explicitly. The mined exact (confidence 1.0)
// global FDs, however, are registered with the SQL engine as plan-time
// facts (sqleng.Engine.RegisterFDs): they license FD-collapsed joins, which
// re-verify every key equality per candidate, so a fact later mutations
// invalidate can only cost work, never change a query result.
// WithMinConfidence below 1 admits approximate CFDs; WithWorkers tunes the
// per-level parallel expansion (defaulting to the session's worker count).
// A cancelled ctx aborts the search mid-level and returns ctx.Err().
func (s *Semandaq) Discover(ctx context.Context, refTable string, opts ...Option) (*discovery.Report, error) {
	o := s.resolve(DefaultEngine, opts)
	tab, err := s.Table(refTable)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Incremental-first serving: route through the table's discovery
	// session, which refreshes the previous mining run by re-verifying only
	// the lattice nodes whose columns changed — and answers an unchanged
	// version without mining at all. The report is identical to a cold Mine
	// over the same snapshot (the discovery cross-check tier), so callers
	// see no behavioral difference. The returned report may be served again
	// while the version holds; treat it as immutable.
	rep, err := s.discoverySession(refTable, tab).Discover(ctx, discovery.Options{
		MinSupport:       o.minSupport,
		MaxLHS:           o.maxLHS,
		MaxPatternsPerFD: o.maxPatterns,
		MinConfidence:    o.minConfidence,
		Workers:          o.workers,
	})
	if err != nil {
		return nil, err
	}
	// Refresh the SQL engine's FD facts from the run (copy-on-write and
	// guard-verified, so racing queries and later mutations are both safe).
	// A projection failure only skips the optimization, never the report.
	if fds, ferr := rep.ExactFDs(tab.Schema()); ferr == nil {
		s.engine.RegisterFDs(refTable, fds)
	}
	return rep, nil
}

// discoverySession returns the table's incremental discovery session,
// creating or replacing it when the registered table instance changed.
func (s *Semandaq) discoverySession(name string, tab *relstore.Table) *discovery.Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	ts, ok := s.sessions[key]
	if !ok || ts.tab != tab {
		ts = &tableSession{tab: tab, sess: discovery.NewSession(tab)}
		s.sessions[key] = ts
	}
	return ts.sess
}

// DiscoverCFDs mines constraints from a reference table (does not register
// them; inspect and register explicitly).
//
// Deprecated: use Discover(ctx, table, WithMinSupport(n), WithMaxLHS(k),
// ...), which runs the snapshot-pinned lattice miner and returns the
// versioned report with per-candidate support and confidence.
func (s *Semandaq) DiscoverCFDs(refTable string, opts discovery.Options) ([]*cfd.CFD, error) {
	//semandaq:vet-ignore ctxloop deprecated context-free wrapper by design
	rep, err := s.Discover(context.Background(), refTable,
		WithMinSupport(opts.MinSupport),
		WithMaxLHS(opts.MaxLHS),
		WithMaxPatterns(opts.MaxPatternsPerFD),
		WithMinConfidence(opts.MinConfidence),
		WithWorkers(opts.Workers))
	if err != nil {
		return nil, err
	}
	return rep.CFDs, nil
}

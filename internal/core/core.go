// Package core wires Semandaq's components (Fig. 1 of the paper) into one
// facade: a store of relational tables, the constraint engine with its
// static analysis, the SQL-based error detector, the data auditor, the data
// cleanser, the data monitor and the data explorer. The CLI, the HTTP
// server, the examples and the benches all drive this type.
package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"semandaq/internal/audit"
	"semandaq/internal/cfd"
	"semandaq/internal/consistency"
	"semandaq/internal/detect"
	"semandaq/internal/discovery"
	"semandaq/internal/explore"
	"semandaq/internal/monitor"
	"semandaq/internal/relstore"
	"semandaq/internal/repair"
	"semandaq/internal/sqleng"
)

// Semandaq is one data-quality session over a store of tables.
type Semandaq struct {
	mu     sync.Mutex
	store  *relstore.Store
	engine *sqleng.Engine
	// cfds maps lowercased table name to its registered constraints.
	cfds map[string][]*cfd.CFD
	// reports caches the last detection per table, keyed by table version.
	reports map[string]cachedReport
	// workers is the ParallelDetection worker count; 0 means GOMAXPROCS.
	workers int
}

type cachedReport struct {
	version int64
	rep     *detect.Report
}

// New creates a Semandaq instance over an empty store.
func New() *Semandaq { return NewWithStore(relstore.NewStore()) }

// NewWithStore creates a Semandaq instance over an existing store.
func NewWithStore(store *relstore.Store) *Semandaq {
	return &Semandaq{
		store:   store,
		engine:  sqleng.New(store),
		cfds:    map[string][]*cfd.CFD{},
		reports: map[string]cachedReport{},
	}
}

// Store exposes the underlying store.
func (s *Semandaq) Store() *relstore.Store { return s.store }

// SetWorkers sets the goroutine count ParallelDetection uses; n <= 0 resets
// to the default (runtime.GOMAXPROCS). The detection result does not depend
// on the worker count, so cached reports stay valid.
func (s *Semandaq) SetWorkers(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 0 {
		n = 0
	}
	s.workers = n
}

// Workers returns the configured ParallelDetection worker count; 0 means
// the GOMAXPROCS default.
func (s *Semandaq) Workers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workers
}

// SQL executes an ad-hoc SQL statement against the store (the paper's data
// explorer lets users navigate the data; this is the programmatic hatch).
func (s *Semandaq) SQL(query string) (*sqleng.Result, error) {
	return s.engine.Query(query)
}

// LoadCSV reads a CSV stream into a new table.
func (s *Semandaq) LoadCSV(name string, r io.Reader) (*relstore.Table, error) {
	tab, err := relstore.ReadCSV(name, r)
	if err != nil {
		return nil, err
	}
	s.store.Put(tab)
	return tab, nil
}

// RegisterTable adds an existing table to the session.
func (s *Semandaq) RegisterTable(tab *relstore.Table) { s.store.Put(tab) }

// Table returns a registered table.
func (s *Semandaq) Table(name string) (*relstore.Table, error) {
	tab, ok := s.store.Table(name)
	if !ok {
		return nil, fmt.Errorf("semandaq: no table %q", name)
	}
	return tab, nil
}

// Tables lists the registered table names (excluding detection artifacts).
func (s *Semandaq) Tables() []string {
	var out []string
	for _, n := range s.store.Names() {
		if strings.HasPrefix(n, "_tp_") || strings.HasPrefix(n, "_vg_") || strings.HasPrefix(n, "cfd_tp_") {
			continue
		}
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RegisterCFDs attaches constraints to a table after validating them
// against its schema and checking the whole resulting set for
// satisfiability — the constraint engine's "does this make sense" gate.
// On an unsatisfiable set nothing is registered and the conflict is
// returned inside the error.
func (s *Semandaq) RegisterCFDs(table string, cfds []*cfd.CFD) error {
	tab, err := s.Table(table)
	if err != nil {
		return err
	}
	for _, c := range cfds {
		if err := c.Validate(tab.Schema()); err != nil {
			return err
		}
		if c.Table == "" {
			c.Table = tab.Schema().Name
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(table)
	all := append(append([]*cfd.CFD{}, s.cfds[key]...), cfds...)
	rep, err := consistency.Check(tab.Schema(), all, nil)
	if err != nil {
		return err
	}
	if !rep.Satisfiable {
		return fmt.Errorf("semandaq: CFD set for %s is unsatisfiable: %s", table, rep.Conflict)
	}
	s.cfds[key] = all
	for _, kind := range detectorKinds {
		delete(s.reports, key+"\x00"+fmt.Sprint(kind))
	}
	return nil
}

// RegisterCFDText parses the text CFD syntax and registers the result.
func (s *Semandaq) RegisterCFDText(table, text string) ([]*cfd.CFD, error) {
	cfds, err := cfd.ParseSet(text)
	if err != nil {
		return nil, err
	}
	if err := s.RegisterCFDs(table, cfds); err != nil {
		return nil, err
	}
	return cfds, nil
}

// CFDs returns the constraints registered for a table.
func (s *Semandaq) CFDs(table string) []*cfd.CFD {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*cfd.CFD{}, s.cfds[strings.ToLower(table)]...)
}

// CheckConsistency re-runs the satisfiability analysis, optionally with
// finite attribute domains.
func (s *Semandaq) CheckConsistency(table string, domains consistency.Domains) (*consistency.Report, error) {
	tab, err := s.Table(table)
	if err != nil {
		return nil, err
	}
	return consistency.Check(tab.Schema(), s.CFDs(table), domains)
}

// DetectorKind selects the detection implementation.
type DetectorKind int

// The available detectors.
const (
	// SQLDetection generates and runs the two SQL queries per CFD (the
	// paper's technique).
	SQLDetection DetectorKind = iota
	// NativeDetection uses in-memory hash grouping over the row store
	// (the single-threaded reference baseline).
	NativeDetection
	// ParallelDetection shards detection over the table's columnar
	// snapshot across runtime.GOMAXPROCS workers by a hash of each CFD's
	// LHS code vector; the report is identical to NativeDetection's.
	ParallelDetection
	// ColumnarDetection runs the sequential scan over the table's
	// columnar snapshot with dictionary-code group keys; the report is
	// identical to NativeDetection's.
	ColumnarDetection
)

// detectorKinds lists every kind, for cache invalidation.
var detectorKinds = []DetectorKind{SQLDetection, NativeDetection, ParallelDetection, ColumnarDetection}

// String names the detector kind.
func (k DetectorKind) String() string {
	switch k {
	case SQLDetection:
		return "sql"
	case NativeDetection:
		return "native"
	case ParallelDetection:
		return "parallel"
	case ColumnarDetection:
		return "columnar"
	default:
		return fmt.Sprintf("DetectorKind(%d)", int(k))
	}
}

// ParseDetectorKind maps the CLI/HTTP engine names ("sql", "native",
// "parallel", "columnar") to a DetectorKind.
func ParseDetectorKind(s string) (DetectorKind, error) {
	switch s {
	case "sql":
		return SQLDetection, nil
	case "native":
		return NativeDetection, nil
	case "parallel":
		return ParallelDetection, nil
	case "columnar":
		return ColumnarDetection, nil
	default:
		return SQLDetection, fmt.Errorf("semandaq: unknown detection engine %q (want sql, native, parallel or columnar)", s)
	}
}

// Detect runs violation detection on a table with its registered CFDs,
// using the session's worker count for ParallelDetection. The report is
// cached until the table changes.
func (s *Semandaq) Detect(table string, kind DetectorKind) (*detect.Report, error) {
	return s.DetectWorkers(table, kind, s.Workers())
}

// DetectWorkers is Detect with an explicit ParallelDetection worker count
// for this call only (0 = GOMAXPROCS); other kinds ignore it. Servers use
// it to honor a per-request worker override without mutating the shared
// session.
func (s *Semandaq) DetectWorkers(table string, kind DetectorKind, workers int) (*detect.Report, error) {
	tab, err := s.Table(table)
	if err != nil {
		return nil, err
	}
	cfds := s.CFDs(table)
	if len(cfds) == 0 {
		return nil, fmt.Errorf("semandaq: no CFDs registered for %s", table)
	}
	key := strings.ToLower(table) + "\x00" + fmt.Sprint(kind)
	s.mu.Lock()
	if c, ok := s.reports[key]; ok && c.version == tab.Version() {
		s.mu.Unlock()
		return c.rep, nil
	}
	s.mu.Unlock()
	var det detect.Detector
	switch kind {
	case SQLDetection:
		det = detect.NewSQLDetector(s.store)
	case ParallelDetection:
		det = detect.ParallelDetector{Workers: workers}
	case ColumnarDetection:
		det = detect.ColumnarDetector{Workers: 1}
	default:
		det = detect.NativeDetector{}
	}
	version := tab.Version()
	rep, err := det.Detect(tab, cfds)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.reports[key] = cachedReport{version: version, rep: rep}
	s.mu.Unlock()
	return rep, nil
}

// DetectionSQL returns the SQL statements Detect would generate (the
// explain view of the error detector).
func (s *Semandaq) DetectionSQL(table string) ([]string, error) {
	tab, err := s.Table(table)
	if err != nil {
		return nil, err
	}
	cfds := s.CFDs(table)
	if len(cfds) == 0 {
		return nil, fmt.Errorf("semandaq: no CFDs registered for %s", table)
	}
	return detect.GenerateSQL(tab, cfds)
}

// Audit produces the data quality report (detecting first if needed).
func (s *Semandaq) Audit(table string) (*audit.Report, error) {
	tab, err := s.Table(table)
	if err != nil {
		return nil, err
	}
	rep, err := s.Detect(table, NativeDetection)
	if err != nil {
		return nil, err
	}
	return audit.Audit(tab, s.CFDs(table), rep)
}

// Explore builds the drill-down explorer over the current detection state.
func (s *Semandaq) Explore(table string) (*explore.Explorer, error) {
	tab, err := s.Table(table)
	if err != nil {
		return nil, err
	}
	rep, err := s.Detect(table, NativeDetection)
	if err != nil {
		return nil, err
	}
	return explore.New(tab, s.CFDs(table), rep)
}

// Repair computes a candidate repair (the original table is not modified;
// review then ApplyRepair).
func (s *Semandaq) Repair(table string) (*repair.Result, error) {
	tab, err := s.Table(table)
	if err != nil {
		return nil, err
	}
	cfds := s.CFDs(table)
	if len(cfds) == 0 {
		return nil, fmt.Errorf("semandaq: no CFDs registered for %s", table)
	}
	return repair.NewRepairer().Repair(tab, cfds)
}

// ApplyRepair commits reviewed modifications to the live table.
func (s *Semandaq) ApplyRepair(table string, mods []repair.Modification) (int, []repair.Modification, error) {
	tab, err := s.Table(table)
	if err != nil {
		return 0, nil, err
	}
	return repair.Apply(tab, mods)
}

// Monitor starts a data monitor on the table. cleansed selects incremental
// repair (true) vs incremental detection only (false).
func (s *Semandaq) Monitor(table string, cleansed bool) (*monitor.Monitor, error) {
	tab, err := s.Table(table)
	if err != nil {
		return nil, err
	}
	cfds := s.CFDs(table)
	if len(cfds) == 0 {
		return nil, fmt.Errorf("semandaq: no CFDs registered for %s", table)
	}
	return monitor.New(tab, cfds, cleansed)
}

// DiscoverCFDs mines constraints from a reference table (does not register
// them; inspect and register explicitly).
func (s *Semandaq) DiscoverCFDs(refTable string, opts discovery.Options) ([]*cfd.CFD, error) {
	tab, err := s.Table(refTable)
	if err != nil {
		return nil, err
	}
	return discovery.Discover(tab, opts)
}

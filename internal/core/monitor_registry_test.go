package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

func registrySession(t *testing.T, rows int) *Semandaq {
	t.Helper()
	s := New()
	tab := relstore.NewTable(schema.New("reg", "K", "V"))
	for i := 0; i < rows; i++ {
		tab.MustInsert(relstore.Tuple{
			types.NewString(fmt.Sprintf("k%d", i%50)),
			types.NewString(fmt.Sprintf("v%d", i%3)),
		})
	}
	s.RegisterTable(tab)
	if _, err := s.RegisterCFDText("reg", `reg: [K=_] -> [V=_]`); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestMonitorRegistryRouting: Monitor registers; the mutation API routes
// through it; StopMonitor detaches it.
func TestMonitorRegistryRouting(t *testing.T) {
	s := registrySession(t, 10)
	if m, err := s.ActiveMonitor("reg"); err != nil || m != nil {
		t.Fatalf("fresh session has monitor %v, %v", m, err)
	}
	if _, err := s.ApplyUpdates("reg", nil); !errors.Is(err, ErrNoMonitor) {
		t.Fatalf("ApplyUpdates without monitor = %v, want ErrNoMonitor", err)
	}
	m, err := s.Monitor(context.Background(), "reg")
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.ActiveMonitor("reg")
	if err != nil || got != m {
		t.Fatalf("ActiveMonitor = %v, %v", got, err)
	}
	before := m.DirtyCount()
	// Insert a row that disagrees with k0's value: tracked immediately.
	if _, _, err := s.Insert("reg", relstore.Tuple{
		types.NewString("k0"), types.NewString("other")}); err != nil {
		t.Fatal(err)
	}
	if m.DirtyCount() <= before {
		t.Fatalf("insert bypassed the monitor: dirty %d -> %d", before, m.DirtyCount())
	}
	if !s.StopMonitor("reg") {
		t.Fatal("StopMonitor found nothing")
	}
	if m2, err := s.ActiveMonitor("reg"); err != nil || m2 != nil {
		t.Fatalf("monitor still active after stop: %v, %v", m2, err)
	}
}

// TestMonitorBusyRefusesWrites: while a replacement monitor seeds its
// tracker from a large table, concurrent writes and ActiveMonitor return
// ErrMonitorBusy instead of racing the handover.
func TestMonitorBusyRefusesWrites(t *testing.T) {
	s := registrySession(t, 150_000)
	done := make(chan error, 1)
	go func() {
		_, err := s.Monitor(context.Background(), "reg")
		done <- err
	}()
	sawBusy := false
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, _, err := s.Insert("reg", relstore.Tuple{
			types.NewString("kx"), types.NewString("vx")}); errors.Is(err, ErrMonitorBusy) {
			sawBusy = true
			break
		} else if err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			// Seeding finished before we caught it in the act; with a
			// 150k-row table this should not happen on any real machine.
			if !sawBusy {
				t.Skip("monitor seeded too fast to observe the busy window")
			}
		default:
		}
	}
	if !sawBusy {
		t.Fatal("never observed ErrMonitorBusy during monitor start")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The window closes: writes go through the new monitor.
	if _, _, err := s.Insert("reg", relstore.Tuple{
		types.NewString("kx"), types.NewString("vx")}); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// The concurrent read/write stress suite. The workload maintains a simple
// invariant: every row ever written satisfies V = "val-" + K, so at EVERY
// table version the FD K -> V holds and a correct single-version reader
// must report zero violations. Column C is unconstrained churn that
// exercises the SetCell copy-on-write path. A reader that tears across
// versions — mixing a row from before a delete with one from after an
// insert, or observing a half-applied cell write — has no such guarantee
// and fails the assertion; before snapshot isolation this test also
// crashed outright under -race.
//
// Readers additionally check that every report is stamped with a version
// and that versions never move backwards.

func valFor(k string) string { return "val-" + k }

func stressRow(rng *rand.Rand, w int) relstore.Tuple {
	k := fmt.Sprintf("k%d", rng.Intn(8))
	return relstore.Tuple{
		types.NewString(k),
		types.NewString(valFor(k)),
		types.NewInt(int64(rng.Intn(1000) + w*10000)),
	}
}

func newStressSession(t *testing.T) *Semandaq {
	t.Helper()
	s := New()
	tab := relstore.NewTable(schema.New("traffic", "K", "V", "C"))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		tab.MustInsert(stressRow(rng, 9))
	}
	s.RegisterTable(tab)
	if _, err := s.RegisterCFDText("traffic", `traffic: [K=_] -> [V=_]`); err != nil {
		t.Fatal(err)
	}
	return s
}

// runStress drives >= 4 writers against blocking detection on every
// engine, the violation stream, and SQL self-join readers.
func runStress(t *testing.T, s *Semandaq, withMonitor bool) {
	ctx := context.Background()
	if withMonitor {
		if _, err := s.Monitor(ctx, "traffic"); err != nil {
			t.Fatal(err)
		}
	}
	// Writers run until every reader has completed its iterations, so each
	// read provably overlaps live write traffic; readers do a fixed number
	// of passes each.
	const writers = 5
	const readerIters = 5
	stopWriting := make(chan struct{})
	var wg, readerWG sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			var mine []relstore.TupleID
			for i := 0; ; i++ {
				select {
				case <-stopWriting:
					return
				default:
				}
				switch {
				// The >= 60 bound keeps the table size flat (~500 rows)
				// however long the readers take: the SQL self-join reader
				// is quadratic in the per-key group size, so an unbounded
				// insert stream would starve it.
				case len(mine) >= 60 || (len(mine) > 3 && rng.Intn(3) == 0):
					id := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					if _, err := s.Delete("traffic", id); err != nil {
						t.Error(err)
						return
					}
				case len(mine) > 0 && rng.Intn(3) == 0:
					// Churn the unconstrained column: whatever C holds, the
					// invariant (and so every report) is unaffected.
					if _, err := s.SetCell("traffic", mine[rng.Intn(len(mine))], "C",
						types.NewInt(int64(rng.Intn(1_000_000)))); err != nil {
						t.Error(err)
						return
					}
				default:
					id, _, err := s.Insert("traffic", stressRow(rng, w))
					if err != nil {
						t.Error(err)
						return
					}
					mine = append(mine, id)
				}
			}
		}(w)
	}

	assertClean := func(where string, version, lastVersion int64) int64 {
		t.Helper()
		if version <= 0 {
			t.Errorf("%s: report not version-stamped (version %d)", where, version)
		}
		if version < lastVersion {
			t.Errorf("%s: version went backwards: %d after %d", where, version, lastVersion)
		}
		return version
	}

	// Blocking detection, one reader per engine.
	for _, kind := range []DetectorKind{SQLDetection, NativeDetection, ColumnarDetection, ParallelDetection} {
		readerWG.Add(1)
		go func(kind DetectorKind) {
			defer readerWG.Done()
			last := int64(0)
			for i := 0; i < readerIters; i++ {
				rep, err := s.Detect(ctx, "traffic", WithEngine(kind))
				if err != nil {
					t.Errorf("detect %v: %v", kind, err)
					return
				}
				if n := rep.TotalViolations(); n != 0 {
					t.Errorf("detect %v: %d violations in a workload that is clean at every version (torn read across versions?)", kind, n)
					return
				}
				last = assertClean(fmt.Sprintf("detect %v", kind), rep.Version, last)
			}
		}(kind)
	}

	// Streaming detection.
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		last := int64(0)
		for i := 0; i < readerIters; i++ {
			seq, version, err := s.DetectStreamVersion(ctx, "traffic")
			if err != nil {
				t.Errorf("stream: %v", err)
				return
			}
			for v, err := range seq {
				if err != nil {
					t.Errorf("stream: %v", err)
					return
				}
				t.Errorf("stream yielded violation %+v in an always-clean workload", v)
				return
			}
			last = assertClean("stream", version, last)
		}
	}()

	// SQL self-join readers: any pair of rows agreeing on K must agree on
	// V — one pinned version per query makes the result provably empty.
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for i := 0; i < readerIters; i++ {
				res, err := s.SQL(ctx, `SELECT t1._tid FROM traffic t1, traffic t2 WHERE t1.K = t2.K AND t1.V <> t2.V`)
				if err != nil {
					t.Errorf("sql: %v", err)
					return
				}
				if len(res.Rows) != 0 {
					t.Errorf("sql self-join found %d FD-violating pairs (mixed table versions in one query?)", len(res.Rows))
					return
				}
				if v, ok := res.Versions["traffic"]; !ok || v <= 0 {
					t.Errorf("sql result not version-stamped: %v", res.Versions)
					return
				}
			}
		}()
	}

	// Discovery readers: each Discover routes through the table's
	// incremental session (cache-refresh over the changed columns, full
	// mine after inserts/deletes). Every served report must reflect exactly
	// one pinned version — and in this workload K -> V holds at EVERY
	// version, so a report missing that global FD can only come from mining
	// state torn across versions.
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		last := int64(0)
		for i := 0; i < readerIters; i++ {
			rep, err := s.Discover(ctx, "traffic", WithMinSupport(2), WithMaxLHS(2))
			if err != nil {
				t.Errorf("discover: %v", err)
				return
			}
			found := false
			for _, c := range rep.Candidates {
				if c.Kind == "global-fd" && len(c.CFD.LHS) == 1 && c.CFD.LHS[0] == "K" && c.CFD.RHS[0] == "V" {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("discover: K -> V missing at version %d (mining state torn across versions?)", rep.Version)
				return
			}
			last = assertClean("discover", rep.Version, last)
		}
	}()

	// With a monitor active, its incrementally tracked report must stay
	// clean too, concurrently with the writers feeding it.
	if withMonitor {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for i := 0; i < 3*readerIters; i++ {
				m, err := s.ActiveMonitor("traffic")
				if err != nil || m == nil {
					t.Errorf("monitor gone: %v %v", m, err)
					return
				}
				if rep := m.Report(); rep.TotalViolations() != 0 {
					t.Errorf("tracker report has %d violations", rep.TotalViolations())
					return
				}
			}
		}()
	}

	readerWG.Wait()
	close(stopWriting)
	wg.Wait()

	// Quiesced: one final pass per engine agrees on the final version.
	final := int64(0)
	for _, kind := range []DetectorKind{SQLDetection, NativeDetection, ColumnarDetection, ParallelDetection} {
		rep, err := s.Detect(ctx, "traffic", WithEngine(kind))
		if err != nil {
			t.Fatal(err)
		}
		if rep.TotalViolations() != 0 {
			t.Fatalf("final %v report dirty", kind)
		}
		if final == 0 {
			final = rep.Version
		} else if rep.Version != final {
			t.Fatalf("final versions disagree: %v at %d, expected %d", kind, rep.Version, final)
		}
	}
	tab, _ := s.Table("traffic")
	if final != tab.Version() {
		t.Fatalf("final report version %d != table version %d", final, tab.Version())
	}
}

func TestConcurrentReadWriteStress(t *testing.T) {
	runStress(t, newStressSession(t), false)
}

func TestConcurrentReadWriteStressMonitored(t *testing.T) {
	runStress(t, newStressSession(t), true)
}

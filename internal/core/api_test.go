package core

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"

	"semandaq/internal/datagen"
	"semandaq/internal/detect"
	"semandaq/internal/relstore"
)

// TestSetWorkersResetsOnZeroAndNegative pins the documented contract: any
// n <= 0 — zero included — resets the session to the GOMAXPROCS default,
// and the default flows into requests that do not override it.
func TestSetWorkersResetsOnZeroAndNegative(t *testing.T) {
	s := New()
	s.SetWorkers(6)
	if got := s.Workers(); got != 6 {
		t.Fatalf("Workers() = %d, want 6", got)
	}
	for _, n := range []int{0, -1, -99} {
		s.SetWorkers(6)
		s.SetWorkers(n)
		if got := s.Workers(); got != 0 {
			t.Errorf("SetWorkers(%d): Workers() = %d, want 0 (GOMAXPROCS default)", n, got)
		}
	}
	// The session default reaches a request's resolved options...
	s.SetWorkers(4)
	if o := s.resolve(DefaultEngine, nil); o.workers != 4 {
		t.Errorf("resolved workers = %d, want session default 4", o.workers)
	}
	// ...and WithWorkers overrides per request, with <= 0 meaning the
	// GOMAXPROCS default again (the old DetectWorkers contract).
	if o := s.resolve(DefaultEngine, []Option{WithWorkers(2)}); o.workers != 2 {
		t.Errorf("WithWorkers(2) resolved to %d", o.workers)
	}
	if o := s.resolve(DefaultEngine, []Option{WithWorkers(0)}); o.workers != 0 || !o.workersSet {
		t.Errorf("WithWorkers(0) resolved to %+v", o)
	}
	if o := s.resolve(DefaultEngine, []Option{WithWorkers(-3)}); o.workers != 0 {
		t.Errorf("WithWorkers(-3) resolved to %d", o.workers)
	}
}

// datasetSession loads a generated dirty workload whose standard CFD set
// has several constraints, so scoping is observable.
func datasetSession(t *testing.T) (*Semandaq, []string) {
	t.Helper()
	ds := datagen.Generate(datagen.Config{Tuples: 3000, Seed: 17, NoiseRate: 0.08})
	s := New()
	s.RegisterTable(ds.Dirty)
	if err := s.RegisterCFDs("customer", datagen.StandardCFDs()); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, c := range s.CFDs("customer") {
		ids = append(ids, c.ID)
	}
	return s, ids
}

// filterReport reduces a full report to the named CFDs, recomputing vio(t)
// under the paper's rule — the reference the scoped engines must match.
func filterReport(rep *detect.Report, ids ...string) *detect.Report {
	want := map[string]bool{}
	for _, id := range ids {
		want[id] = true
	}
	out := &detect.Report{
		Table:      rep.Table,
		TupleCount: rep.TupleCount,
		Vio:        map[relstore.TupleID]int{},
		PerCFD:     map[string]*detect.CFDStats{},
	}
	for id, st := range rep.PerCFD {
		if want[id] {
			c := *st
			out.PerCFD[id] = &c
		}
	}
	for _, v := range rep.Violations {
		if want[v.CFDID] {
			out.Violations = append(out.Violations, v)
		}
	}
	for _, g := range rep.Groups {
		if want[g.CFDID] {
			out.Groups = append(out.Groups, g)
		}
	}
	type key struct {
		id relstore.TupleID
		c  string
		k  detect.Kind
	}
	seen := map[key]bool{}
	for _, v := range out.Violations {
		kk := key{v.TupleID, v.CFDID, v.Kind}
		if seen[kk] {
			continue
		}
		seen[kk] = true
		if v.Kind == detect.SingleTuple {
			out.Vio[v.TupleID]++
		} else {
			out.Vio[v.TupleID] += v.Partners
		}
	}
	return out
}

// TestWithCFDsScopingMatrix asserts, for every engine, that detection
// scoped to a subset of the registered CFDs equals filtering the full
// report down to those IDs.
func TestWithCFDsScopingMatrix(t *testing.T) {
	s, ids := datasetSession(t)
	if len(ids) < 3 {
		t.Fatalf("want >= 3 standard CFDs, got %v", ids)
	}
	ctx := context.Background()
	scopes := [][]string{
		{ids[0]},
		{ids[1], ids[2]},
		ids, // scoping to everything must equal the full report
	}
	for _, kind := range []DetectorKind{SQLDetection, NativeDetection, ParallelDetection, ColumnarDetection} {
		full, err := s.Detect(ctx, "customer", WithEngine(kind))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for _, scope := range scopes {
			scoped, err := s.Detect(ctx, "customer", WithEngine(kind), WithCFDs(scope...))
			if err != nil {
				t.Fatalf("%v scope %v: %v", kind, scope, err)
			}
			want := filterReport(full, scope...)
			if !reflect.DeepEqual(scoped.Violations, want.Violations) {
				t.Errorf("%v scope %v: violations differ (%d vs %d)",
					kind, scope, len(scoped.Violations), len(want.Violations))
			}
			if !reflect.DeepEqual(scoped.Vio, want.Vio) {
				t.Errorf("%v scope %v: vio(t) differs", kind, scope)
			}
			if !reflect.DeepEqual(scoped.PerCFD, want.PerCFD) {
				t.Errorf("%v scope %v: per-CFD stats differ", kind, scope)
			}
			if len(scoped.Groups) != len(want.Groups) {
				t.Errorf("%v scope %v: groups %d vs %d", kind, scope, len(scoped.Groups), len(want.Groups))
			}
		}
	}
}

func TestWithCFDsUnknownID(t *testing.T) {
	s, _ := datasetSession(t)
	_, err := s.Detect(context.Background(), "customer", WithCFDs("nope"))
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("err = %v, want unknown-CFD error naming the id", err)
	}
}

// TestWithLimit pins the truncation contract: the violation records are
// capped, the statistics still describe the full scan, and the cache keeps
// the untruncated report.
func TestWithLimit(t *testing.T) {
	s, _ := datasetSession(t)
	ctx := context.Background()
	full, err := s.Detect(ctx, "customer")
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Violations) < 10 {
		t.Fatalf("workload too clean: %d violations", len(full.Violations))
	}
	capped, err := s.Detect(ctx, "customer", WithLimit(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Violations) != 5 {
		t.Errorf("limited violations = %d, want 5", len(capped.Violations))
	}
	if !reflect.DeepEqual(capped.Vio, full.Vio) || len(capped.PerCFD) != len(full.PerCFD) {
		t.Error("limit must not touch the full-scan statistics")
	}
	again, err := s.Detect(ctx, "customer")
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Violations) != len(full.Violations) {
		t.Errorf("cache returned a truncated report: %d vs %d", len(again.Violations), len(full.Violations))
	}
	// Streamed limit: exactly k violations, then the scan is cancelled.
	n := 0
	for _, err := range s.DetectStream(ctx, "customer", WithLimit(7)) {
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 7 {
		t.Errorf("streamed %d violations under WithLimit(7)", n)
	}
}

// TestDetectStreamParity asserts the facade stream yields the blocking
// report's violation set, for the streaming default and the blocking
// fallback engines alike.
func TestDetectStreamParity(t *testing.T) {
	s, _ := datasetSession(t)
	ctx := context.Background()
	for _, kind := range []DetectorKind{ParallelDetection, ColumnarDetection, NativeDetection, SQLDetection} {
		want, err := s.Detect(ctx, "customer", WithEngine(kind))
		if err != nil {
			t.Fatal(err)
		}
		var got []detect.Violation
		for v, err := range s.DetectStream(ctx, "customer", WithEngine(kind)) {
			if err != nil {
				t.Fatalf("%v: %v", kind, err)
			}
			got = append(got, v)
		}
		sort.Slice(got, func(i, j int) bool {
			a, b := got[i], got[j]
			if a.TupleID != b.TupleID {
				return a.TupleID < b.TupleID
			}
			if a.CFDID != b.CFDID {
				return a.CFDID < b.CFDID
			}
			if a.Kind != b.Kind {
				return a.Kind < b.Kind
			}
			return a.Pattern < b.Pattern
		})
		if !reflect.DeepEqual(got, want.Violations) {
			t.Errorf("%v: streamed set (%d) != blocking report (%d)", kind, len(got), len(want.Violations))
		}
	}
}

// TestDeprecatedWrappers keeps the pre-context signatures working and
// equal to the options API.
func TestDeprecatedWrappers(t *testing.T) {
	s, _ := datasetSession(t)
	want, err := s.Detect(context.Background(), "customer", WithEngine(NativeDetection))
	if err != nil {
		t.Fatal(err)
	}
	byKind, err := s.DetectKind("customer", NativeDetection)
	if err != nil {
		t.Fatal(err)
	}
	if byKind != want {
		t.Error("DetectKind should hit the same cached report")
	}
	byWorkers, err := s.DetectWorkers("customer", ParallelDetection, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := detect.Equivalent(want, byWorkers); err != nil {
		t.Errorf("DetectWorkers: %v", err)
	}
}

// TestDetectPreCancelled pins ctx.Err() propagation through the facade for
// every engine.
func TestDetectPreCancelled(t *testing.T) {
	s, _ := datasetSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, kind := range []DetectorKind{SQLDetection, NativeDetection, ParallelDetection, ColumnarDetection} {
		if _, err := s.Detect(ctx, "customer", WithEngine(kind)); !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", kind, err)
		}
	}
	sawErr := false
	for _, err := range s.DetectStream(ctx, "customer") {
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Errorf("stream err = %v", err)
			}
			sawErr = true
		}
	}
	if !sawErr {
		t.Error("pre-cancelled stream ended without a terminal error")
	}
}

// TestAuditScoped asserts the audit honors WithCFDs: the violation pie
// only names the scoped constraints.
func TestAuditScoped(t *testing.T) {
	s, ids := datasetSession(t)
	a, err := s.Audit(context.Background(), "customer", WithCFDs(ids[0]))
	if err != nil {
		t.Fatal(err)
	}
	for _, slice := range a.Pie {
		if slice.CFDID != ids[0] {
			t.Errorf("pie names %s outside the scope", slice.CFDID)
		}
	}
}

package core

import (
	"context"
	"strings"
	"testing"

	"semandaq/internal/consistency"
	"semandaq/internal/datagen"
	"semandaq/internal/detect"
	"semandaq/internal/discovery"
	"semandaq/internal/monitor"
	"semandaq/internal/relstore"
	"semandaq/internal/types"
)

const customersCSV = `NAME,CNT,CITY,ZIP,STR,CC,AC
Mike,UK,Edinburgh,EH2 4SD,Mayfield,44,131
Rick,UK,Edinburgh,EH2 4SD,Mayfield,44,131
Nora,UK,Edinburgh,EH2 4SD,Mayfeild,44,131
Joe,US,New York,01202,Mtn Ave,44,908
Ben,US,Chicago,60601,Wacker,1,312
`

const cfdText = `
phi2@ customer: [CNT=UK, ZIP=_] -> [STR=_]
phi4@ customer: [CC=44] -> [CNT=UK]
`

func session(t *testing.T) *Semandaq {
	t.Helper()
	s := New()
	if _, err := s.LoadCSV("customer", strings.NewReader(customersCSV)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterCFDText("customer", cfdText); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEndToEndPipeline(t *testing.T) {
	s := session(t)
	if got := s.Tables(); len(got) != 1 || got[0] != "customer" {
		t.Errorf("tables = %v", got)
	}
	if got := len(s.CFDs("customer")); got != 2 {
		t.Errorf("cfds = %d", got)
	}

	// Detection, both paths, must agree.
	native, err := s.Detect(context.Background(), "customer", WithEngine(NativeDetection))
	if err != nil {
		t.Fatal(err)
	}
	sql, err := s.Detect(context.Background(), "customer", WithEngine(SQLDetection))
	if err != nil {
		t.Fatal(err)
	}
	if err := detect.Equivalent(native, sql); err != nil {
		t.Fatal(err)
	}
	if len(native.Vio) != 4 { // Mike, Rick, Nora (group) + Joe (constant)
		t.Errorf("vio = %v", native.Vio)
	}

	// Audit.
	a, err := s.Audit(context.Background(), "customer")
	if err != nil {
		t.Fatal(err)
	}
	if a.DirtyTuples == 0 {
		t.Error("audit found no dirt")
	}

	// Explore.
	ex, err := s.Explore(context.Background(), "customer")
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.CFDs()) != 2 {
		t.Errorf("explorer cfds = %d", len(ex.CFDs()))
	}

	// Repair + apply.
	res, err := s.Repair(context.Background(), "customer")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("repair remaining = %d", res.Remaining)
	}
	applied, skipped, err := s.ApplyRepair("customer", res.Modifications)
	if err != nil {
		t.Fatal(err)
	}
	if applied == 0 || len(skipped) != 0 {
		t.Errorf("applied=%d skipped=%d", applied, len(skipped))
	}
	// After applying, detection is clean (and the cache was invalidated by
	// the table version change).
	rep, err := s.Detect(context.Background(), "customer", WithEngine(NativeDetection))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Errorf("violations after repair = %d", len(rep.Violations))
	}
}

func TestDetectCache(t *testing.T) {
	s := session(t)
	r1, err := s.Detect(context.Background(), "customer", WithEngine(NativeDetection))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Detect(context.Background(), "customer", WithEngine(NativeDetection))
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("unchanged table should hit the report cache")
	}
	tab, _ := s.Table("customer")
	tab.SetCell(0, 0, types.NewString("Mike2"))
	r3, err := s.Detect(context.Background(), "customer", WithEngine(NativeDetection))
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Error("mutation should invalidate the cache")
	}
}

func TestRegisterRejectsUnsatisfiable(t *testing.T) {
	s := New()
	if _, err := s.LoadCSV("customer", strings.NewReader(customersCSV)); err != nil {
		t.Fatal(err)
	}
	_, err := s.RegisterCFDText("customer", `
customer: [NAME=_] -> [CNT=UK]
customer: [NAME=_] -> [CNT=US]
`)
	if err == nil || !strings.Contains(err.Error(), "unsatisfiable") {
		t.Errorf("err = %v", err)
	}
	// Nothing was registered.
	if len(s.CFDs("customer")) != 0 {
		t.Error("rejected set partially registered")
	}
}

func TestRegisterValidatesSchema(t *testing.T) {
	s := New()
	if _, err := s.LoadCSV("customer", strings.NewReader(customersCSV)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterCFDText("customer", "customer: [NOPE=_] -> [CITY=_]"); err == nil {
		t.Error("unknown attribute should fail")
	}
	if _, err := s.RegisterCFDText("nope", cfdText); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := s.RegisterCFDText("customer", "broken"); err == nil {
		t.Error("parse error should fail")
	}
}

func TestCheckConsistency(t *testing.T) {
	s := session(t)
	rep, err := s.CheckConsistency("customer", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Satisfiable {
		t.Error("registered set should be satisfiable")
	}
	// With a finite domain pinning CC to 44 and CNT to US, phi4 clashes.
	rep, err = s.CheckConsistency("customer", consistency.Domains{
		"CC":  {types.NewInt(44)},
		"CNT": {types.NewString("US")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Satisfiable {
		t.Error("pinned domains should make phi4 unsatisfiable")
	}
}

func TestNoCFDsErrors(t *testing.T) {
	s := New()
	if _, err := s.LoadCSV("customer", strings.NewReader(customersCSV)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Detect(context.Background(), "customer", WithEngine(NativeDetection)); err == nil {
		t.Error("Detect without CFDs should fail")
	}
	if _, err := s.Repair(context.Background(), "customer"); err == nil {
		t.Error("Repair without CFDs should fail")
	}
	if _, err := s.Monitor(context.Background(), "customer"); err == nil {
		t.Error("Monitor without CFDs should fail")
	}
	if _, err := s.DetectionSQL("customer"); err == nil {
		t.Error("DetectionSQL without CFDs should fail")
	}
}

func TestUnknownTableErrors(t *testing.T) {
	s := New()
	if _, err := s.Table("nope"); err == nil {
		t.Error("Table")
	}
	if _, err := s.Detect(context.Background(), "nope", WithEngine(NativeDetection)); err == nil {
		t.Error("Detect")
	}
	if _, err := s.Audit(context.Background(), "nope"); err == nil {
		t.Error("Audit")
	}
	if _, err := s.Explore(context.Background(), "nope"); err == nil {
		t.Error("Explore")
	}
	if _, err := s.Repair(context.Background(), "nope"); err == nil {
		t.Error("Repair")
	}
	if _, _, err := s.ApplyRepair("nope", nil); err == nil {
		t.Error("ApplyRepair")
	}
	if _, err := s.Monitor(context.Background(), "nope"); err == nil {
		t.Error("Monitor")
	}
	if _, err := s.DiscoverCFDs("nope", discovery.Options{}); err == nil {
		t.Error("DiscoverCFDs")
	}
	if _, err := s.CheckConsistency("nope", nil); err == nil {
		t.Error("CheckConsistency")
	}
}

func TestDetectionSQLAndAdHocSQL(t *testing.T) {
	s := session(t)
	stmts, err := s.DetectionSQL("customer")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) == 0 {
		t.Error("no SQL generated")
	}
	res, err := s.SQL(context.Background(), "SELECT COUNT(*) FROM customer WHERE CNT = 'UK'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 3 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestMonitorIntegration(t *testing.T) {
	s := session(t)
	res, err := s.Repair(context.Background(), "customer")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ApplyRepair("customer", res.Modifications); err != nil {
		t.Fatal(err)
	}
	m, err := s.Monitor(context.Background(), "customer", WithCleansed(true))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := m.Apply([]monitor.Update{
		{Op: monitor.OpInsert, Row: rowOf("Zed", "US", "Edinburgh", "EH2 4SD", "Wrongst", 44, 131)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Dirty != 0 {
		t.Errorf("monitor left %d dirty", batch.Dirty)
	}
}

func rowOf(name, cnt, city, zip, str string, cc, ac int64) relstore.Tuple {
	return relstore.Tuple{
		types.NewString(name), types.NewString(cnt), types.NewString(city),
		types.NewString(zip), types.NewString(str),
		types.NewInt(cc), types.NewInt(ac)}
}

func TestDiscoverIntegration(t *testing.T) {
	ds := datagen.Generate(datagen.Config{Tuples: 400, Seed: 3})
	s := New()
	s.RegisterTable(ds.Clean)
	rep, err := s.Discover(context.Background(), "customer",
		WithMinSupport(20), WithMaxLHS(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CFDs) == 0 {
		t.Fatal("nothing discovered")
	}
	if rep.Version != ds.Clean.Version() {
		t.Errorf("Report.Version = %d, want %d", rep.Version, ds.Clean.Version())
	}
	if rep.Options.MinSupport != 20 || rep.Options.MaxLHS != 2 {
		t.Errorf("options not threaded: %+v", rep.Options)
	}
	if len(rep.Candidates) == 0 {
		t.Fatal("no candidates in report")
	}
	if err := s.RegisterCFDs("customer", rep.CFDs); err != nil {
		t.Fatalf("discovered CFDs should register cleanly: %v", err)
	}
}

func TestDiscoverPreCancelled(t *testing.T) {
	ds := datagen.Generate(datagen.Config{Tuples: 400, Seed: 3})
	s := New()
	s.RegisterTable(ds.Clean)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Discover(ctx, "customer"); err != context.Canceled {
		t.Errorf("pre-cancelled Discover returned %v, want context.Canceled", err)
	}
}

func TestDiscoverVersionTracksMutation(t *testing.T) {
	ds := datagen.Generate(datagen.Config{Tuples: 400, Seed: 3})
	s := New()
	s.RegisterTable(ds.Clean)
	rep1, err := s.Discover(context.Background(), "customer", WithMinSupport(20))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Insert("customer", rowOf("x", "UK", "Edi", "EH1", "May", 44, 131)); err != nil {
		t.Fatal(err)
	}
	rep2, err := s.Discover(context.Background(), "customer", WithMinSupport(20))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Version <= rep1.Version {
		t.Errorf("version did not advance after a write: %d -> %d", rep1.Version, rep2.Version)
	}
	if rep2.Tuples != rep1.Tuples+1 {
		t.Errorf("tuples = %d, want %d", rep2.Tuples, rep1.Tuples+1)
	}
}

// TestDeprecatedDiscoverCFDs pins the wrapper's contract: same rule set as
// the options path.
func TestDeprecatedDiscoverCFDs(t *testing.T) {
	ds := datagen.Generate(datagen.Config{Tuples: 400, Seed: 3})
	s := New()
	s.RegisterTable(ds.Clean)
	cfds, err := s.DiscoverCFDs("customer", discovery.Options{MinSupport: 20, MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Discover(context.Background(), "customer",
		WithMinSupport(20), WithMaxLHS(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfds) == 0 || len(cfds) != len(rep.CFDs) {
		t.Fatalf("wrapper returned %d CFDs, options path %d", len(cfds), len(rep.CFDs))
	}
	for i := range cfds {
		if cfds[i].String() != rep.CFDs[i].String() {
			t.Errorf("CFD %d differs:\n%s\nvs\n%s", i, cfds[i], rep.CFDs[i])
		}
	}
}

func TestTablesHidesArtifacts(t *testing.T) {
	s := session(t)
	if _, err := s.Detect(context.Background(), "customer", WithEngine(SQLDetection)); err != nil {
		t.Fatal(err)
	}
	for _, n := range s.Tables() {
		if strings.HasPrefix(n, "_") || strings.HasPrefix(n, "cfd_tp_") {
			t.Errorf("artifact %q listed", n)
		}
	}
}

// TestDetectorKindMatrix pins the engine-name round-trip and that every
// kind produces an equivalent report through the session facade (the
// columnar and parallel engines additionally share the cache keyed per
// kind).
func TestDetectorKindMatrix(t *testing.T) {
	names := map[DetectorKind]string{
		SQLDetection:      "sql",
		NativeDetection:   "native",
		ParallelDetection: "parallel",
		ColumnarDetection: "columnar",
	}
	for kind, name := range names {
		if kind.String() != name {
			t.Errorf("String(%d) = %q, want %q", int(kind), kind.String(), name)
		}
		parsed, err := ParseDetectorKind(name)
		if err != nil || parsed != kind {
			t.Errorf("ParseDetectorKind(%q) = %v, %v", name, parsed, err)
		}
	}
	if _, err := ParseDetectorKind("vectorized"); err == nil {
		t.Error("ParseDetectorKind accepted an unknown engine")
	}

	s := session(t)
	base, err := s.Detect(context.Background(), "customer", WithEngine(NativeDetection))
	if err != nil {
		t.Fatal(err)
	}
	for kind := range names {
		rep, err := s.Detect(context.Background(), "customer", WithEngine(kind))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := detect.Equivalent(base, rep); err != nil {
			t.Errorf("%s vs native: %v", kind, err)
		}
	}
}

package core

// Option configures one request (Detect, DetectStream, Audit, Repair,
// Monitor). Options are applied in order over the session's defaults, so a
// later option wins over an earlier duplicate.
type Option func(*requestOptions)

// requestOptions is the resolved per-request configuration.
type requestOptions struct {
	kind    DetectorKind
	kindSet bool
	// workers overrides the session's ParallelDetection worker count when
	// workersSet; 0 still means GOMAXPROCS (the old DetectWorkers
	// contract, which servers rely on for per-request overrides).
	workers    int
	workersSet bool
	// cfdIDs scopes detection to the named registered CFDs; empty means
	// all of them.
	cfdIDs []string
	// limit caps the number of violation records returned/streamed;
	// 0 means unlimited.
	limit int
	// cleansed selects the monitor's incremental-repair mode.
	cleansed bool
	// Discovery knobs (Discover only; non-positive means the discovery
	// package's default — explicit positive values always win, see
	// discovery.Options).
	minSupport    int
	maxLHS        int
	minConfidence float64
	maxPatterns   int
}

// WithEngine selects the detection engine for this request. The default is
// ColumnarDetection for Detect/Audit/Explore/Repair and ParallelDetection
// for DetectStream; every engine produces an identical report.
func WithEngine(kind DetectorKind) Option {
	return func(o *requestOptions) {
		o.kind = kind
		o.kindSet = true
	}
}

// WithWorkers overrides the worker count for the sharded engines for this
// request only (the shared session is not mutated). n <= 0 means
// runtime.GOMAXPROCS. Other engines ignore it.
func WithWorkers(n int) Option {
	return func(o *requestOptions) {
		if n < 0 {
			n = 0
		}
		o.workers = n
		o.workersSet = true
	}
}

// WithCFDs scopes the request to the registered CFDs with the given IDs.
// Detection over a scoped set equals filtering the full report down to
// those constraints. Unknown IDs are an error at request time.
func WithCFDs(ids ...string) Option {
	return func(o *requestOptions) {
		o.cfdIDs = append(o.cfdIDs, ids...)
	}
}

// WithLimit caps the violation records a request returns: Detect truncates
// the report's Violations slice to k (the per-tuple counts and per-CFD
// statistics still describe the full scan), and DetectStream stops after
// yielding k violations, cancelling the underlying scan. k <= 0 means
// unlimited.
func WithLimit(k int) Option {
	return func(o *requestOptions) {
		if k < 0 {
			k = 0
		}
		o.limit = k
	}
}

// WithCleansed marks the monitored table as already cleaned: the monitor
// repairs incoming errors incrementally instead of only detecting them.
// Only Monitor consumes it.
func WithCleansed(on bool) Option {
	return func(o *requestOptions) { o.cleansed = on }
}

// WithMinSupport sets the minimum number of tuples a discovered pattern's
// condition must cover. Explicit positive values always win — including 1,
// which makes every value frequent; n <= 0 selects the discovery default
// max(2, N/100). Only Discover consumes it.
func WithMinSupport(n int) Option {
	return func(o *requestOptions) { o.minSupport = n }
}

// WithMaxLHS bounds the size of a discovered embedded FD's LHS (the
// lattice depth); any positive depth is allowed. n <= 0 selects the
// discovery default 2. Only Discover consumes it.
func WithMaxLHS(n int) Option {
	return func(o *requestOptions) { o.maxLHS = n }
}

// WithMinConfidence sets the minimum confidence for discovered embedded-FD
// checks; values below 1 admit approximate CFDs (the g3 kept fraction).
// c <= 0 selects the discovery default 1.0 (exact dependencies only).
// Only Discover consumes it.
func WithMinConfidence(c float64) Option {
	return func(o *requestOptions) { o.minConfidence = c }
}

// WithMaxPatterns bounds how many condition patterns one discovered
// embedded FD may accumulate. n <= 0 selects the discovery default 8.
// Only Discover consumes it.
func WithMaxPatterns(n int) Option {
	return func(o *requestOptions) { o.maxPatterns = n }
}

// resolve folds the options over the session defaults.
func (s *Semandaq) resolve(defKind DetectorKind, opts []Option) requestOptions {
	o := requestOptions{kind: defKind, workers: s.Workers()}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

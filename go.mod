module semandaq

go 1.24

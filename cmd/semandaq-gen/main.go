// Command semandaq-gen emits the synthetic customer workload as CSV files,
// for driving the semandaq CLI or external tools: a clean instance, a
// dirtied instance at a chosen noise rate, the injected-error ground truth,
// and the standard CFD set in the text syntax.
//
//	semandaq-gen -n 10000 -noise 0.05 -seed 42 -dir ./data
//
// writes data/customers_clean.csv, data/customers_dirty.csv,
// data/corruptions.csv and data/rules.cfd.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"semandaq/internal/datagen"
	"semandaq/internal/relstore"
)

func main() {
	n := flag.Int("n", 10000, "number of customer tuples")
	noise := flag.Float64("noise", 0.05, "fraction of tuples corrupted")
	seed := flag.Int64("seed", 1, "generator seed")
	dir := flag.String("dir", ".", "output directory")
	flag.Parse()

	if err := generate(*n, *noise, *seed, *dir); err != nil {
		log.Fatal(err)
	}
}

func generate(n int, noise float64, seed int64, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ds := datagen.Generate(datagen.Config{Tuples: n, Seed: seed, NoiseRate: noise})

	writeTable := func(name string, tab *relstore.Table) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return relstore.WriteCSV(tab, f)
	}
	if err := writeTable("customers_clean.csv", ds.Clean); err != nil {
		return err
	}
	if err := writeTable("customers_dirty.csv", ds.Dirty); err != nil {
		return err
	}

	// Ground truth: one row per injected error.
	cf, err := os.Create(filepath.Join(dir, "corruptions.csv"))
	if err != nil {
		return err
	}
	defer cf.Close()
	cw := csv.NewWriter(cf)
	if err := cw.Write([]string{"tuple_id", "attr", "clean", "dirty", "kind"}); err != nil {
		return err
	}
	for _, c := range ds.Corruptions {
		if err := cw.Write([]string{
			fmt.Sprint(c.TupleID), c.Attr,
			c.Clean.CoerceString(), c.Dirty.CoerceString(), c.Kind,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}

	// The standard CFD set, in the text syntax the CLI consumes.
	rf, err := os.Create(filepath.Join(dir, "rules.cfd"))
	if err != nil {
		return err
	}
	defer rf.Close()
	for _, c := range datagen.StandardCFDs() {
		if _, err := fmt.Fprintln(rf, c.String()); err != nil {
			return err
		}
	}

	fmt.Printf("wrote %d clean + %d dirty tuples (%d corruptions) to %s\n",
		ds.Clean.Len(), ds.Dirty.Len(), len(ds.Corruptions), dir)
	return nil
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateWritesAllArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := generate(200, 0.1, 7, dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"customers_clean.csv", "customers_dirty.csv", "corruptions.csv", "rules.cfd",
	} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	// The corruption file has the 20 injected rows plus the header.
	data, _ := os.ReadFile(filepath.Join(dir, "corruptions.csv"))
	lines := strings.Count(string(data), "\n")
	if lines != 21 {
		t.Errorf("corruptions.csv has %d lines, want 21", lines)
	}
	// The rules file round-trips through the CLI's CFD parser format.
	rules, _ := os.ReadFile(filepath.Join(dir, "rules.cfd"))
	if !strings.Contains(string(rules), "[CC=44] -> [CNT=UK]") {
		t.Errorf("rules.cfd missing phi3:\n%s", rules)
	}
}

func TestGenerateBadDir(t *testing.T) {
	if err := generate(10, 0, 1, "/proc/definitely/not/writable"); err == nil {
		t.Error("expected error for unwritable dir")
	}
}

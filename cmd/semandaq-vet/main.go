// Command semandaq-vet is the repo's contract checker: a multichecker
// over the custom analyzers in internal/lint that machine-check the
// snapshot/version/context invariants (see docs/INVARIANTS.md).
//
//	semandaq-vet ./...            # check the whole module (CI does this)
//	semandaq-vet -list            # list analyzers
//	semandaq-vet -run snapshotpin ./internal/detect/...
//
// Exit status is 1 if any analyzer reports a diagnostic, 2 on load
// errors. Non-test files only: tests exercise deprecated and
// context-free surfaces on purpose. A finding can be suppressed at the
// line with `//semandaq:vet-ignore <analyzer> <reason>`; the reason is
// mandatory by convention.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"semandaq/internal/lint"
	"semandaq/internal/lint/analysis"
	"semandaq/internal/lint/ctxloop"
	"semandaq/internal/lint/loader"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	runNames := flag.String("run", "", "comma-separated analyzer names to run (default all)")
	allowBackground := flag.String("allow-background", "",
		"comma-separated import paths exempt from ctxloop's context.Background/TODO rule")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *runNames != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*runNames, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			fmt.Fprintf(os.Stderr, "semandaq-vet: unknown analyzer %q (use -list)\n", n)
			os.Exit(2)
		}
		analyzers = sel
	}
	for _, p := range strings.Split(*allowBackground, ",") {
		if p = strings.TrimSpace(p); p != "" {
			ctxloop.AllowBackground[p] = true
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset, pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "semandaq-vet: %v\n", err)
		os.Exit(2)
	}

	loadFailed := false
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		if pkg.Err != nil {
			fmt.Fprintf(os.Stderr, "semandaq-vet: %s: %v\n", pkg.ImportPath, pkg.Err)
			loadFailed = true
			continue
		}
		for _, a := range analyzers {
			ds, err := analysis.Run(a, fset, pkg.Files, pkg.Types, pkg.Info)
			if err != nil {
				fmt.Fprintf(os.Stderr, "semandaq-vet: %v\n", err)
				os.Exit(2)
			}
			diags = append(diags, ds...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	for _, d := range diags {
		fmt.Printf("%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	switch {
	case loadFailed:
		os.Exit(2)
	case len(diags) > 0:
		fmt.Fprintf(os.Stderr, "semandaq-vet: %d contract violation(s)\n", len(diags))
		os.Exit(1)
	}
}

// Command semandaq-vet is the repo's contract checker: a multichecker
// over the custom analyzers in internal/lint that machine-check the
// snapshot/version/context invariants (see docs/INVARIANTS.md).
//
//	semandaq-vet ./...            # check the whole module (CI does this)
//	semandaq-vet -list            # list analyzers
//	semandaq-vet -json ./...      # machine-readable diagnostics on stdout
//	semandaq-vet -run snapshotpin ./internal/detect/...
//
// Packages are analyzed in import-DAG order so interprocedural analyzers
// (lockorder, mutationlog, ctxflow) see their dependencies' facts before
// the importers; module-wide End phases (lock-order cycle detection) run
// once after the last package. A //semandaq:vet-ignore directive that
// suppresses nothing is itself reported (as the pseudo-analyzer
// "suppression") — stale suppressions would otherwise hide real findings
// at that line forever.
//
// Exit status is 1 if any analyzer reports a diagnostic, 2 on load
// errors. Non-test files only: tests exercise deprecated and
// context-free surfaces on purpose. A finding can be suppressed at the
// line with `//semandaq:vet-ignore <analyzer> <reason>`; the reason is
// mandatory by convention.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"semandaq/internal/lint"
	"semandaq/internal/lint/analysis"
	"semandaq/internal/lint/ctxloop"
	"semandaq/internal/lint/loader"
)

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column,omitempty"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

// run is main with injectable streams and an exit code, so tests can
// drive the full driver in-process.
func run(stdout, stderr io.Writer, argv []string) int {
	fs := flag.NewFlagSet("semandaq-vet", flag.ExitOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	runNames := fs.String("run", "", "comma-separated analyzer names to run (default all)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	allowBackground := fs.String("allow-background", "",
		"comma-separated import paths exempt from ctxloop's context.Background/TODO rule")
	fs.Parse(argv)

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	allRan := *runNames == ""
	if !allRan {
		want := map[string]bool{}
		for _, n := range strings.Split(*runNames, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			fmt.Fprintf(stderr, "semandaq-vet: unknown analyzer %q (use -list)\n", n)
			return 2
		}
		analyzers = sel
	}
	for _, p := range strings.Split(*allowBackground, ",") {
		if p = strings.TrimSpace(p); p != "" {
			ctxloop.AllowBackground[p] = true
		}
	}

	// Expand Requires into the execution plan (this also registers every
	// fact type and analyzer name). Register the full suite's names too so
	// stale-directive judging can tell "skipped by -run" from "no such
	// analyzer" even on a subset run.
	plan := analysis.Plan(analyzers)
	for _, a := range lint.All() {
		analysis.RegisterName(a.Name)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset, pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "semandaq-vet: %v\n", err)
		return 2
	}

	store := analysis.NewFactStore()
	dirs := analysis.NewDirectives()
	loadFailed := false
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		if pkg.Err != nil {
			fmt.Fprintf(stderr, "semandaq-vet: %s: %v\n", pkg.ImportPath, pkg.Err)
			loadFailed = true
			continue
		}
		dirs.AddFiles(fset, pkg.Files)
		for _, a := range plan {
			ds, err := analysis.RunPass(a, fset, pkg.Files, pkg.Types, pkg.Info, store, dirs)
			if err != nil {
				fmt.Fprintf(stderr, "semandaq-vet: %v\n", err)
				return 2
			}
			diags = append(diags, ds...)
		}
	}
	for _, a := range plan {
		if a.End == nil {
			continue
		}
		ep := analysis.NewEndPass(a, store, dirs)
		if err := a.End(ep); err != nil {
			fmt.Fprintf(stderr, "semandaq-vet: %v\n", err)
			return 2
		}
		diags = append(diags, ep.Diagnostics()...)
	}
	// Stale suppressions are judged last, once every pass has had its
	// chance to be suppressed. A failed load leaves directives unexercised,
	// so skip the judgment rather than report false staleness.
	if !loadFailed {
		ran := map[string]bool{}
		for _, a := range plan {
			ran[a.Name] = true
		}
		diags = append(diags, dirs.Stale(ran, allRan)...)
	}

	sort.Slice(diags, func(i, j int) bool {
		pi, pj := diags[i].Position(fset), diags[j].Position(fset)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	if *jsonOut {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			p := d.Position(fset)
			out = append(out, jsonDiagnostic{
				File:     p.Filename,
				Line:     p.Line,
				Column:   p.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "semandaq-vet: encoding json: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s: %s [%s]\n", d.Position(fset), d.Message, d.Analyzer)
		}
	}
	switch {
	case loadFailed:
		return 2
	case len(diags) > 0:
		fmt.Fprintf(stderr, "semandaq-vet: %d contract violation(s)\n", len(diags))
		return 1
	}
	return 0
}

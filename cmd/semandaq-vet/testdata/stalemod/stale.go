// Package stalemod type-checks cleanly but carries suppression directives
// that suppress nothing: the driver must report each as a finding of the
// "suppression" pseudo-analyzer and exit 1.
package stalemod

//semandaq:vet-ignore ctxloop nothing on this line ever triggers ctxloop
func Fine() int {
	return 1
}

//semandaq:vet-ignore nosuchanalyzer a typo suppresses nothing forever
func AlsoFine() int {
	return 2
}

module stalemod

go 1.24

module brokenmod

go 1.24

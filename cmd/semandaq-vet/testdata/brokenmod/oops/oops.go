// Package oops does not type-check: the driver must exit 2 with the
// package named, not panic.
package oops

func F() int {
	return "definitely not an int"
}

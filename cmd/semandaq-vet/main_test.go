package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// runIn drives the full driver in-process against a testdata module.
func runIn(t *testing.T, dir string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	t.Chdir(dir)
	var out, errb bytes.Buffer
	code = run(&out, &errb, args)
	return code, out.String(), errb.String()
}

// TestTypeErrorExitsTwo pins the load-error contract: a module that does
// not type-check exits 2 with the offending package named on stderr — not
// a panic, not exit 1, and no stale-suppression noise from the aborted run.
func TestTypeErrorExitsTwo(t *testing.T) {
	code, _, stderr := runIn(t, "testdata/brokenmod", "./...")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "brokenmod/oops") {
		t.Errorf("stderr should name the broken package, got: %s", stderr)
	}
	if !strings.Contains(stderr, "oops.go") {
		t.Errorf("stderr should carry the offending file position, got: %s", stderr)
	}
}

// TestStaleSuppressions pins the stale-directive findings: both the
// known-but-idle and the unknown-name directive are reported under the
// "suppression" pseudo-analyzer and fail the run.
func TestStaleSuppressions(t *testing.T) {
	code, stdout, stderr := runIn(t, "testdata/stalemod", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	for _, want := range []string{
		"stale //semandaq:vet-ignore ctxloop",
		"stale //semandaq:vet-ignore nosuchanalyzer",
		"no analyzer by that name",
		"[suppression]",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

// TestStaleNotJudgedOnSubsetRun pins the -run interplay: a subset run must
// not condemn directives of analyzers it skipped (the unknown name is
// still always stale).
func TestStaleNotJudgedOnSubsetRun(t *testing.T) {
	code, stdout, _ := runIn(t, "testdata/stalemod", "-run", "snapshotpin", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (the unknown-name directive is always stale)\nstdout: %s", code, stdout)
	}
	if strings.Contains(stdout, "vet-ignore ctxloop") {
		t.Errorf("ctxloop directive judged although ctxloop did not run:\n%s", stdout)
	}
	if !strings.Contains(stdout, "vet-ignore nosuchanalyzer") {
		t.Errorf("unknown-name directive not reported on subset run:\n%s", stdout)
	}
}

// TestJSONOutput pins the machine-readable mode CI's report artifact uses.
func TestJSONOutput(t *testing.T) {
	code, stdout, stderr := runIn(t, "testdata/stalemod", "-json", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, stderr)
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("stdout is not a JSON diagnostics array: %v\n%s", err, stdout)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "suppression" {
			t.Errorf("analyzer = %q, want suppression", d.Analyzer)
		}
		if d.File == "" || d.Line == 0 {
			t.Errorf("diagnostic missing position: %+v", d)
		}
		if !strings.Contains(d.Message, "stale //semandaq:vet-ignore") {
			t.Errorf("unexpected message: %q", d.Message)
		}
	}
}

// TestCleanModuleJSON pins the happy path: a clean run emits an empty JSON
// array (not null, not absent) and exits 0.
func TestCleanModuleJSON(t *testing.T) {
	code, stdout, stderr := runIn(t, "testdata/brokenmod", "-json", "./nonexistent/...")
	// No packages matched: go list reports nothing buildable; treat what we
	// get deterministically — the point is the encoder, so accept exit 0 or
	// 2 but require valid JSON when exit is not 2.
	if code == 2 {
		t.Skipf("pattern matched nothing on this toolchain: %s", stderr)
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, stdout)
	}
	if len(diags) != 0 {
		t.Errorf("expected no diagnostics, got %+v", diags)
	}
}

// Command semandaq-server runs the Semandaq data-quality server: a JSON
// HTTP API exposing constraint management, SQL-based detection, auditing,
// exploration, repair and incremental monitoring — the reproduction of the
// paper's multi-tier web architecture (data quality servers + web tier).
//
// Usage:
//
//	semandaq-server [-addr :8080] [-demo]
//
// With -demo the server starts preloaded with the generated customer
// dataset (1000 tuples, 5% noise) and the standard CFD set, so
//
//	curl -X POST localhost:8080/api/detect/customer
//	curl -N localhost:8080/api/detect/customer?stream=1
//	curl localhost:8080/api/audit/customer
//
// work immediately. Detection runs under each request's context: a client
// that disconnects mid-scan (Ctrl-C on the curl) aborts the scan on the
// server, and SIGINT shuts the server down gracefully, cancelling
// in-flight scans.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"semandaq/internal/core"
	"semandaq/internal/datagen"
	"semandaq/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	demo := flag.Bool("demo", false, "preload generated customer data and CFDs")
	tuples := flag.Int("tuples", 1000, "demo dataset size")
	noise := flag.Float64("noise", 0.05, "demo noise rate")
	workers := flag.Int("workers", 0, "parallel detection worker count (default GOMAXPROCS)")
	flag.Parse()

	s := core.New()
	s.SetWorkers(*workers)
	if *demo {
		ds := datagen.Generate(datagen.Config{Tuples: *tuples, Seed: 1, NoiseRate: *noise})
		s.RegisterTable(ds.Dirty)
		if err := s.RegisterCFDs("customer", datagen.StandardCFDs()); err != nil {
			log.Fatal(err)
		}
		log.Printf("demo data loaded: customer (%d tuples, %.0f%% noise)", *tuples, *noise*100)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	srv := &http.Server{
		Addr:    *addr,
		Handler: server.New(s).Handler(),
		// BaseContext ties every request context to the process signal
		// context, so shutdown cancels in-flight scans too.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
	}()
	log.Printf("semandaq-server listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("semandaq-server stopped")
}

// Command semandaq-server runs the Semandaq data-quality server: a JSON
// HTTP API exposing constraint management, SQL-based detection, auditing,
// exploration, repair and incremental monitoring — the reproduction of the
// paper's multi-tier web architecture (data quality servers + web tier).
//
// Usage:
//
//	semandaq-server [-addr :8080] [-demo]
//
// With -demo the server starts preloaded with the generated customer
// dataset (1000 tuples, 5% noise) and the standard CFD set, so
//
//	curl -X POST localhost:8080/api/detect/customer
//	curl localhost:8080/api/audit/customer
//
// work immediately.
package main

import (
	"flag"
	"log"
	"net/http"

	"semandaq/internal/core"
	"semandaq/internal/datagen"
	"semandaq/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	demo := flag.Bool("demo", false, "preload generated customer data and CFDs")
	tuples := flag.Int("tuples", 1000, "demo dataset size")
	noise := flag.Float64("noise", 0.05, "demo noise rate")
	workers := flag.Int("workers", 0, "parallel detection worker count (default GOMAXPROCS)")
	flag.Parse()

	s := core.New()
	s.SetWorkers(*workers)
	if *demo {
		ds := datagen.Generate(datagen.Config{Tuples: *tuples, Seed: 1, NoiseRate: *noise})
		s.RegisterTable(ds.Dirty)
		if err := s.RegisterCFDs("customer", datagen.StandardCFDs()); err != nil {
			log.Fatal(err)
		}
		log.Printf("demo data loaded: customer (%d tuples, %.0f%% noise)", *tuples, *noise*100)
	}
	log.Printf("semandaq-server listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, server.New(s).Handler()))
}

// Command semandaq is the command-line front end to the Semandaq data
// quality system: load a CSV, register CFDs, then detect, audit, explore,
// repair or monitor from a terminal.
//
// Usage:
//
//	semandaq -data customers.csv -cfds rules.cfd <command>
//
// Commands:
//
//	check      check the CFD set for satisfiability
//	detect     run violation detection (use -engine sql|native|parallel|columnar;
//	           -stream prints violations as NDJSON while the scan runs)
//	sql        print the generated detection SQL without running it
//	audit      print the data quality report
//	map        print the tuple-level data quality map
//	explore    drill down: explore [cfdID [patternIdx]]
//	repair     compute a candidate repair; -apply commits it
//	discover   mine CFDs from the loaded data
//	demo       run the built-in paper example end to end
//
// Long scans are cancellable: Ctrl-C (or -timeout) aborts detection
// mid-flight through the request context.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"semandaq/internal/core"
	"semandaq/internal/datagen"
	"semandaq/internal/detect"
	"semandaq/internal/relstore"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "semandaq:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("semandaq", flag.ContinueOnError)
	dataPath := fs.String("data", "", "CSV file holding the relation to check")
	tableName := fs.String("table", "", "table name (default: file base name)")
	cfdPath := fs.String("cfds", "", "file with CFDs, one pattern per line")
	engine := fs.String("engine", "sql", "detection engine: sql, native, parallel or columnar")
	workers := fs.Int("workers", 0, "parallel engine worker count (default GOMAXPROCS)")
	stream := fs.Bool("stream", false, "detect: print violations as NDJSON while the scan runs")
	timeout := fs.Duration("timeout", 0, "abort the command after this duration (0 = none)")
	apply := fs.Bool("apply", false, "repair: apply the candidate repair and write the CSV back")
	outPath := fs.String("o", "", "repair -apply: output CSV path (default: overwrite -data)")
	minSupport := fs.Int("minsupport", 0, "discover: minimum pattern support (0 = max(2, N/100); explicit values, including 1, always win)")
	maxLHS := fs.Int("maxlhs", 2, "discover: maximum LHS size (lattice depth)")
	minConfidence := fs.Float64("minconfidence", 0, "discover: minimum FD confidence (0 = exact only; <1 admits approximate CFDs)")
	verbose := fs.Bool("v", false, "discover: also print every candidate with support and confidence")
	if err := fs.Parse(args); err != nil {
		return err
	}
	engineSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "engine" {
			engineSet = true
		}
	})
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	cmdArgs := fs.Args()
	if len(cmdArgs) == 0 {
		fs.Usage()
		return fmt.Errorf("missing command")
	}
	cmd := cmdArgs[0]

	s := core.New()
	table := *tableName

	if cmd == "demo" {
		return demo(ctx, s, out)
	}

	if *dataPath == "" {
		return fmt.Errorf("-data is required for %s", cmd)
	}
	f, err := os.Open(*dataPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if table == "" {
		base := *dataPath
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		table = strings.TrimSuffix(base, ".csv")
	}
	tab, err := s.LoadCSV(table, f)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "loaded %s: %d tuples, schema %s\n", table, tab.Len(), tab.Schema())

	if cmd != "discover" {
		if *cfdPath == "" {
			return fmt.Errorf("-cfds is required for %s", cmd)
		}
		text, err := os.ReadFile(*cfdPath)
		if err != nil {
			return err
		}
		cfds, err := s.RegisterCFDText(table, string(text))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "registered %d CFDs (satisfiable)\n", len(cfds))
	}

	switch cmd {
	case "check":
		rep, err := s.CheckConsistency(table, nil)
		if err != nil {
			return err
		}
		if rep.Satisfiable {
			fmt.Fprintln(out, "CFD set is satisfiable")
		} else {
			fmt.Fprintf(out, "CFD set is UNSATISFIABLE: %s\n", rep.Conflict)
		}
		return nil

	case "sql":
		stmts, err := s.DetectionSQL(table)
		if err != nil {
			return err
		}
		for _, q := range stmts {
			fmt.Fprintln(out, q+";")
			fmt.Fprintln(out)
		}
		return nil

	case "detect":
		kind, err := core.ParseDetectorKind(*engine)
		if err != nil {
			return err
		}
		opts := []core.Option{core.WithWorkers(*workers)}
		// For -stream an unset -engine keeps DetectStream's default (the
		// sharded columnar detector) instead of forcing the flag's "sql"
		// default through the blocking fallback.
		if engineSet || !*stream {
			opts = append(opts, core.WithEngine(kind))
		}
		if *stream {
			// Violations print as they are found; the report is never
			// materialized.
			type line struct {
				CFD      string `json:"cfd"`
				Kind     string `json:"kind"`
				Pattern  *int   `json:"pattern,omitempty"`
				Tuple    int64  `json:"tuple"`
				Attr     string `json:"attr"`
				Partners int    `json:"partners,omitempty"`
				Expected string `json:"expected,omitempty"`
				Got      string `json:"got,omitempty"`
			}
			enc := json.NewEncoder(out)
			n := 0
			seq, version, err := s.DetectStreamVersion(ctx, table, opts...)
			if err != nil {
				return err
			}
			for v, err := range seq {
				if err != nil {
					return err
				}
				l := line{CFD: v.CFDID, Kind: v.Kind.String(), Tuple: int64(v.TupleID), Attr: v.Attr}
				if v.Kind == detect.SingleTuple {
					pat := v.Pattern
					l.Pattern = &pat
					l.Expected = v.Expected.String()
					l.Got = v.Got.String()
				} else {
					l.Partners = v.Partners
				}
				if err := enc.Encode(l); err != nil {
					return err
				}
				n++
			}
			fmt.Fprintf(out, "# %d violations streamed at version %d\n", n, version)
			return nil
		}
		rep, err := s.Detect(ctx, table, opts...)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%d violations over %d tuples at version %d; %d dirty (max vio %d)\n",
			rep.TotalViolations(), rep.TupleCount, rep.Version, len(rep.Vio), rep.MaxVio())
		for id, st := range rep.PerCFD {
			fmt.Fprintf(out, "  %-12s single=%d multi=%d groups=%d\n",
				id, st.SingleTuple, st.MultiTuple, st.Groups)
		}
		return nil

	case "audit":
		a, err := s.Audit(ctx, table)
		if err != nil {
			return err
		}
		fmt.Fprint(out, a.Render())
		return nil

	case "map":
		ex, err := s.Explore(ctx, table)
		if err != nil {
			return err
		}
		entries, hist := ex.QualityMap()
		shades := []string{" ", "░", "▒", "▓", "█"}
		for _, e := range entries {
			fmt.Fprintf(out, "%6d %s vio=%d\n", e.ID, shades[e.Bucket], e.Vio)
		}
		fmt.Fprintf(out, "histogram (clean..dirtiest): %v\n", hist)
		return nil

	case "explore":
		ex, err := s.Explore(ctx, table)
		if err != nil {
			return err
		}
		switch len(cmdArgs) {
		case 1:
			for _, info := range ex.CFDs() {
				fmt.Fprintf(out, "%-12s %-45s patterns=%d violations=%d\n",
					info.ID, info.FD, info.Patterns, info.Violations)
			}
		case 2:
			pats, err := ex.Patterns(cmdArgs[1])
			if err != nil {
				return err
			}
			for _, p := range pats {
				fmt.Fprintf(out, "#%d %-30s matches=%d violations=%d\n",
					p.Index, p.Pattern, p.Matches, p.Violations)
			}
		default:
			var idx int
			if _, err := fmt.Sscanf(cmdArgs[2], "%d", &idx); err != nil {
				return fmt.Errorf("bad pattern index %q", cmdArgs[2])
			}
			groups, err := ex.LHSGroups(cmdArgs[1], idx)
			if err != nil {
				return err
			}
			for _, g := range groups {
				vals := make([]string, len(g.Values))
				for i, v := range g.Values {
					vals[i] = v.String()
				}
				fmt.Fprintf(out, "[%s] tuples=%d rhsValues=%d violations=%d\n",
					strings.Join(vals, ", "), g.Tuples, g.RHSValues, g.Violations)
			}
		}
		return nil

	case "repair":
		res, err := s.Repair(ctx, table)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "candidate repair: %d modifications, cost %.3f, %d passes, converged=%v\n",
			len(res.Modifications), res.Cost, res.Passes, res.Converged)
		for _, m := range res.Modifications {
			fmt.Fprintf(out, "  tuple %d %s: %v -> %v  (%s, %s)\n",
				m.TupleID, m.Attr, m.Old, m.New, m.CFDID, m.Reason)
		}
		if !*apply {
			fmt.Fprintln(out, "run with -apply to commit")
			return nil
		}
		applied, skipped, err := s.ApplyRepair(table, res.Modifications)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "applied %d modifications (%d skipped)\n", applied, len(skipped))
		dst := *outPath
		if dst == "" {
			dst = *dataPath
		}
		w, err := os.Create(dst)
		if err != nil {
			return err
		}
		defer w.Close()
		if err := relstore.WriteCSV(tab, w); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", dst)
		return nil

	case "discover":
		rep, err := s.Discover(ctx, table,
			core.WithMinSupport(*minSupport),
			core.WithMaxLHS(*maxLHS),
			core.WithMinConfidence(*minConfidence),
			core.WithWorkers(*workers))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "# %d CFDs discovered from %d tuples at version %d (%d candidate patterns)\n",
			len(rep.CFDs), rep.Tuples, rep.Version, len(rep.Candidates))
		for _, c := range rep.CFDs {
			fmt.Fprintf(out, "%s@ %s\n", c.ID, strings.ReplaceAll(c.String(), "\n", "\n"+c.ID+"@ "))
		}
		if *verbose {
			fmt.Fprintln(out, "# candidates (kind support confidence):")
			for _, c := range rep.Candidates {
				fmt.Fprintf(out, "# %-14s %8d %6.3f  %s\n", c.Kind, c.Support, c.Confidence,
					strings.ReplaceAll(c.CFD.String(), "\n", " "))
			}
		}
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// demo runs the paper's running example end to end on generated data.
func demo(ctx context.Context, s *core.Semandaq, out io.Writer) error {
	ds := datagen.Generate(datagen.Config{Tuples: 1000, Seed: 1, NoiseRate: 0.05})
	s.RegisterTable(ds.Dirty)
	if err := s.RegisterCFDs("customer", datagen.StandardCFDs()); err != nil {
		return err
	}
	fmt.Fprintln(out, "== Semandaq demo: 1000 customers, 5% noise, standard CFD set ==")
	rep, err := s.Detect(ctx, "customer", core.WithEngine(core.SQLDetection))
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "detected %d dirty tuples (%d violation records)\n",
		len(rep.Vio), rep.TotalViolations())
	a, err := s.Audit(ctx, "customer")
	if err != nil {
		return err
	}
	fmt.Fprint(out, a.Render())
	res, err := s.Repair(ctx, "customer")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nrepair: %d modifications, converged=%v\n", len(res.Modifications), res.Converged)
	score := ds.ScoreRepairCells(res.Repaired, res.ModifiedCells())
	fmt.Fprintf(out, "repair quality vs ground truth: precision=%.2f recall=%.2f F1=%.2f\n",
		score.Precision(), score.Recall(), score.F1())
	return nil
}

package main

import (
	"context"
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testCSV = `NAME,CNT,CITY,ZIP,STR,CC,AC
Mike,UK,Edinburgh,EH2 4SD,Mayfield,44,131
Rick,UK,Edinburgh,EH2 4SD,Mayfield,44,131
Nora,UK,Edinburgh,EH2 4SD,Mayfeild,44,131
Joe,US,New York,01202,Mtn Ave,44,908
`

const testCFDs = `
customer: [CNT=UK, ZIP=_] -> [STR=_]
customer: [CC=44] -> [CNT=UK]
`

// writeFixture writes the CSV and CFD files into a temp dir.
func writeFixture(t *testing.T) (csvPath, cfdPath string) {
	t.Helper()
	dir := t.TempDir()
	csvPath = filepath.Join(dir, "customer.csv")
	cfdPath = filepath.Join(dir, "rules.cfd")
	if err := os.WriteFile(csvPath, []byte(testCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cfdPath, []byte(testCFDs), 0o644); err != nil {
		t.Fatal(err)
	}
	return csvPath, cfdPath
}

// runCLI invokes the command and returns its output.
func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(context.Background(), args, &buf)
	return buf.String(), err
}

func TestCLIDetect(t *testing.T) {
	csv, cfds := writeFixture(t)
	out, err := runCLI(t, "-data", csv, "-cfds", cfds, "detect")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"loaded customer: 4 tuples", "registered 2 CFDs", "4 dirty"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Native and parallel engines agree.
	for _, engine := range []string{"native", "parallel"} {
		out2, err := runCLI(t, "-data", csv, "-cfds", cfds, "-engine", engine, "detect")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out2, "4 dirty") {
			t.Errorf("%s out:\n%s", engine, out2)
		}
	}
	// Explicit worker count.
	out3, err := runCLI(t, "-data", csv, "-cfds", cfds, "-engine", "parallel", "-workers", "2", "detect")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out3, "4 dirty") {
		t.Errorf("parallel -workers 2 out:\n%s", out3)
	}
	// Unknown engine fails.
	if _, err := runCLI(t, "-data", csv, "-cfds", cfds, "-engine", "warp", "detect"); err == nil {
		t.Error("unknown engine should fail")
	}
}

func TestCLICheckAndSQL(t *testing.T) {
	csv, cfds := writeFixture(t)
	out, err := runCLI(t, "-data", csv, "-cfds", cfds, "check")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "satisfiable") {
		t.Errorf("out:\n%s", out)
	}
	out, err = runCLI(t, "-data", csv, "-cfds", cfds, "sql")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "SELECT") || !strings.Contains(out, "GROUP BY") {
		t.Errorf("sql out:\n%s", out)
	}
}

func TestCLIAuditAndMapAndExplore(t *testing.T) {
	csv, cfds := writeFixture(t)
	out, err := runCLI(t, "-data", csv, "-cfds", cfds, "audit")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Data quality report") {
		t.Errorf("audit out:\n%s", out)
	}
	out, err = runCLI(t, "-data", csv, "-cfds", cfds, "map")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "histogram") {
		t.Errorf("map out:\n%s", out)
	}
	out, err = runCLI(t, "-data", csv, "-cfds", cfds, "explore")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "phi1") {
		t.Errorf("explore out:\n%s", out)
	}
	out, err = runCLI(t, "-data", csv, "-cfds", cfds, "explore", "phi1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "matches=") {
		t.Errorf("explore phi1 out:\n%s", out)
	}
	out, err = runCLI(t, "-data", csv, "-cfds", cfds, "explore", "phi1", "0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tuples=") {
		t.Errorf("explore phi1 0 out:\n%s", out)
	}
}

func TestCLIRepairApplyWritesCSV(t *testing.T) {
	csv, cfds := writeFixture(t)
	outPath := filepath.Join(t.TempDir(), "repaired.csv")
	out, err := runCLI(t, "-data", csv, "-cfds", cfds, "-apply", "-o", outPath, "repair")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "applied") || !strings.Contains(out, "wrote "+outPath) {
		t.Errorf("repair out:\n%s", out)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "Mayfeild") {
		t.Error("typo street survived the repair")
	}
	// Re-running detect on the repaired CSV shows zero dirt.
	out, err = runCLI(t, "-data", outPath, "-table", "customer", "-cfds", cfds, "detect")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0 dirty") {
		t.Errorf("post-repair detect:\n%s", out)
	}
}

func TestCLIRepairWithoutApply(t *testing.T) {
	csv, cfds := writeFixture(t)
	out, err := runCLI(t, "-data", csv, "-cfds", cfds, "repair")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "run with -apply to commit") {
		t.Errorf("out:\n%s", out)
	}
	// The source file must be untouched.
	data, _ := os.ReadFile(csv)
	if !strings.Contains(string(data), "Mayfeild") {
		t.Error("repair without -apply modified the data file")
	}
}

func TestCLIDiscover(t *testing.T) {
	csv, _ := writeFixture(t)
	out, err := runCLI(t, "-data", csv, "-minsupport", "2", "discover")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "CFDs discovered") {
		t.Errorf("out:\n%s", out)
	}
	// The mined snapshot's version and tuple count are surfaced.
	if !strings.Contains(out, "at version") || !strings.Contains(out, "tuples") {
		t.Errorf("missing version stamp in:\n%s", out)
	}
}

func TestCLIDiscoverVerboseCandidates(t *testing.T) {
	csv, _ := writeFixture(t)
	out, err := runCLI(t, "-data", csv, "-minsupport", "2", "-minconfidence", "0.8", "-v", "discover")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "candidates (kind support confidence):") {
		t.Errorf("missing candidate listing in:\n%s", out)
	}
}

func TestCLIDemo(t *testing.T) {
	out, err := runCLI(t, "demo")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"demo", "detected", "repair quality", "precision"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	csv, cfds := writeFixture(t)
	cases := [][]string{
		{},                       // missing command
		{"detect"},               // missing -data
		{"-data", csv, "detect"}, // missing -cfds
		{"-data", "/nope.csv", "-cfds", cfds, "detect"},
		{"-data", csv, "-cfds", "/nope.cfd", "detect"},
		{"-data", csv, "-cfds", cfds, "warp"}, // unknown command
		{"-data", csv, "-cfds", cfds, "explore", "phi1", "xx"},
	}
	for _, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestCLIDetectStream(t *testing.T) {
	csv, cfds := writeFixture(t)
	out, err := runCLI(t, "-data", csv, "-cfds", cfds, "-stream", "detect")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "violations streamed") {
		t.Errorf("missing stream summary in:\n%s", out)
	}
	if !strings.Contains(out, `"cfd"`) {
		t.Errorf("no NDJSON violation lines in:\n%s", out)
	}
}

func TestCLITimeoutCancelsDetect(t *testing.T) {
	csv, cfds := writeFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	err := run(ctx, []string{"-data", csv, "-cfds", cfds, "detect"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Errorf("err = %v, want context cancellation", err)
	}
}

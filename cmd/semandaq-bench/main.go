// Command semandaq-bench regenerates the paper's figures and the imported
// performance claims as text tables. Run it with no arguments for every
// experiment, or select specific ones:
//
//	semandaq-bench                 # everything, full workloads
//	semandaq-bench -quick          # everything, shrunk workloads
//	semandaq-bench -exp F2 -exp D1 # selected experiments
//	semandaq-bench -list           # list experiment IDs
//	semandaq-bench -json BENCH_detect.json   # machine-readable detection
//	                                         # sweep (ns/op, rows/s per
//	                                         # engine and size)
//	semandaq-bench -discoverjson BENCH_discover.json  # machine-readable
//	                                         # discovery sweep (legacy vs
//	                                         # lattice miner per size/depth)
//
// The experiment index (workloads, parameters, expected shapes) is in
// DESIGN.md; EXPERIMENTS.md records paper-vs-measured for each. The -json,
// -discoverjson, -incrjson and -factorjson sweeps feed the BENCH_*.json
// performance trajectories the CI bench-smoke job uploads.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"semandaq/internal/experiments"
)

// expFlags collects repeated -exp flags.
type expFlags []string

func (e *expFlags) String() string { return fmt.Sprint([]string(*e)) }
func (e *expFlags) Set(v string) error {
	*e = append(*e, v)
	return nil
}

func main() {
	var sel expFlags
	quick := flag.Bool("quick", false, "shrink workloads for a fast pass")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	jsonPath := flag.String("json", "", "run the detection bench sweep and write machine-readable results to this file")
	discoverJSONPath := flag.String("discoverjson", "", "run the discovery bench sweep and write machine-readable results to this file")
	incrJSONPath := flag.String("incrjson", "", "run the incremental-serving ops sweep and write machine-readable results to this file")
	factorJSONPath := flag.String("factorjson", "", "run the factorised-evaluation ops sweep and write machine-readable results to this file")
	flag.Var(&sel, "exp", "experiment ID to run (repeatable); default all")
	flag.Parse()

	// Interrupt cancels the context, so a Ctrl-C lands between detection
	// strides instead of waiting out a million-tuple sweep.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *jsonPath != "" {
		if _, err := experiments.WriteDetectBenchJSON(ctx, *jsonPath, *quick, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "semandaq-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *discoverJSONPath != "" {
		if _, err := experiments.WriteDiscoverBenchJSON(ctx, *discoverJSONPath, *quick, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "semandaq-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *incrJSONPath != "" {
		if _, err := experiments.WriteIncrementalBenchJSON(ctx, *incrJSONPath, *quick, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "semandaq-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *factorJSONPath != "" {
		if _, err := experiments.WriteFactorisedBenchJSON(ctx, *factorJSONPath, *quick, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "semandaq-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	run := experiments.All()
	if len(sel) > 0 {
		run = run[:0]
		for _, id := range sel {
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "semandaq-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(1)
			}
			run = append(run, e)
		}
	}
	for i, e := range run {
		if i > 0 {
			fmt.Println()
		}
		if err := e.Run(ctx, os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "semandaq-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}
